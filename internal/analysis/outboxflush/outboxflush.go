// Package outboxflush enforces the one-doorbell-per-iteration contract on
// server loops (paper §IV-A): a server stages its engine's output into
// wiring.Outbox buffers during an iteration and flushes each box once at
// the iteration boundary. A loop type that pushes into an outbox field but
// never reaches Flush/FlushPaced (or Drop) from its Poll method leaves
// requests parked forever — the peer's doorbell never rings.
//
// Enforcement is per receiver type: for every named type with a
// Poll(time.Time) bool method, every *wiring.Outbox field (including slice
// and map fields of outboxes) that any method of the package pushes into
// must be flushed by some function reachable from Poll. Pushes and flushes
// through local aliases, range variables, and *wiring.Outbox parameters of
// same-package helpers are followed.
package outboxflush

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"newtos/internal/analysis"
)

const wiringPath = "newtos/internal/wiring"

// Analyzer reports outbox fields that are staged into but not flushed from
// the owning type's Poll method.
var Analyzer = &analysis.Analyzer{
	Name: "outboxflush",
	Doc: "a server loop that stages into a wiring.Outbox must call " +
		"Flush/FlushPaced on it on the Poll path",
	Run: run,
}

// summary is what one function does to outboxes, directly or via callees.
type summary struct {
	decl        *ast.FuncDecl
	pushFields  map[*types.Var]token.Pos
	flushFields map[*types.Var]bool
	pushParams  map[int]bool
	flushParams map[int]bool
	calls       []*ast.CallExpr
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// Map every function object declared in this package to its summary.
	sums := map[*types.Func]*summary{}
	var order []*types.Func
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sums[fn] = &summary{
				decl:        fd,
				pushFields:  map[*types.Var]token.Pos{},
				flushFields: map[*types.Var]bool{},
				pushParams:  map[int]bool{},
				flushParams: map[int]bool{},
			}
			order = append(order, fn)
		}
	}

	for _, fn := range order {
		fillDirect(info, fn, sums[fn])
	}
	propagate(info, order, sums)

	// For every named type with a Poll loop: compare what the package
	// stages into its outbox fields against what Poll's call tree flushes.
	for _, fn := range order {
		if fn.Name() != "Poll" || !isPollSig(fn) {
			continue
		}
		recv := analysis.NamedOf(fn.Type().(*types.Signature).Recv().Type())
		if recv == nil {
			continue
		}
		pushed := map[*types.Var]token.Pos{}
		for _, g := range order {
			for f, pos := range sums[g].pushFields {
				if fieldOwner(f, recv) {
					if old, ok := pushed[f]; !ok || pos < old {
						pushed[f] = pos
					}
				}
			}
		}
		if len(pushed) == 0 {
			continue
		}
		flushed := map[*types.Var]bool{}
		for g := range reachable(info, fn, sums) {
			for f := range sums[g].flushFields {
				flushed[f] = true
			}
		}
		var missing []*types.Var
		for f := range pushed {
			if !flushed[f] {
				missing = append(missing, f)
			}
		}
		sort.Slice(missing, func(i, j int) bool { return pushed[missing[i]] < pushed[missing[j]] })
		for _, f := range missing {
			pass.Report(analysis.Diagnostic{
				Pos: pushed[f],
				Message: "outbox " + f.Name() + " is staged into (Push) but never " +
					"flushed on any path from (*" + recv.Obj().Name() + ").Poll — " +
					"stage and Flush/FlushPaced in the same iteration",
			})
		}
	}
	return nil
}

// fillDirect records fn's own Push/Flush calls and collects its call sites.
func fillDirect(info *types.Info, fn *types.Func, s *summary) {
	params := paramVars(fn)
	aliases := buildAliases(info, s.decl)
	ast.Inspect(s.decl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		s.calls = append(s.calls, call)
		callee := analysis.Callee(info, call)
		if callee == nil {
			return true
		}
		isPush := analysis.IsMethod(callee, wiringPath, "Outbox", "Push")
		isFlush := analysis.IsMethod(callee, wiringPath, "Outbox", "Flush") ||
			analysis.IsMethod(callee, wiringPath, "Outbox", "FlushPaced") ||
			analysis.IsMethod(callee, wiringPath, "Outbox", "Drop")
		if !isPush && !isFlush {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		field, param := attribute(info, sel.X, params, aliases)
		switch {
		case field != nil && isPush:
			if _, seen := s.pushFields[field]; !seen {
				s.pushFields[field] = call.Pos()
			}
		case field != nil:
			s.flushFields[field] = true
		case param >= 0 && isPush:
			s.pushParams[param] = true
		case param >= 0:
			s.flushParams[param] = true
		}
		return true
	})
}

// propagate folds callee effects into callers until a fixpoint: passing an
// outbox field (or own parameter) to a helper that pushes/flushes its
// parameter is a push/flush by the caller.
func propagate(info *types.Info, order []*types.Func, sums map[*types.Func]*summary) {
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			s := sums[fn]
			params := paramVars(fn)
			aliases := buildAliases(info, s.decl)
			for _, call := range s.calls {
				callee := analysis.Callee(info, call)
				cs, ok := sums[callee]
				if !ok {
					continue
				}
				for j, arg := range call.Args {
					if !cs.pushParams[j] && !cs.flushParams[j] {
						continue
					}
					field, param := attribute(info, arg, params, aliases)
					if cs.pushParams[j] {
						if field != nil {
							if _, seen := s.pushFields[field]; !seen {
								s.pushFields[field] = arg.Pos()
								changed = true
							}
						} else if param >= 0 && !s.pushParams[param] {
							s.pushParams[param] = true
							changed = true
						}
					}
					if cs.flushParams[j] {
						if field != nil && !s.flushFields[field] {
							s.flushFields[field] = true
							changed = true
						} else if param >= 0 && !s.flushParams[param] {
							s.flushParams[param] = true
							changed = true
						}
					}
				}
			}
		}
	}
}

// reachable returns the same-package functions reachable from fn through
// static calls (closure bodies count as part of their enclosing function).
func reachable(info *types.Info, fn *types.Func, sums map[*types.Func]*summary) map[*types.Func]bool {
	seen := map[*types.Func]bool{fn: true}
	work := []*types.Func{fn}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		for _, call := range sums[cur].calls {
			callee := analysis.Callee(info, call)
			if _, ok := sums[callee]; ok && !seen[callee] {
				seen[callee] = true
				work = append(work, callee)
			}
		}
	}
	return seen
}

// attribute resolves an expression to the outbox field it denotes, or the
// function parameter index it denotes, or (nil, -1). It sees through
// indexing (s.boxes[k]) and the local aliases collected by buildAliases.
func attribute(info *types.Info, e ast.Expr, params map[*types.Var]int, aliases map[*types.Var]*types.Var) (*types.Var, int) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, ok := info.Uses[e].(*types.Var)
		if !ok {
			return nil, -1
		}
		if f, ok := aliases[v]; ok {
			return f, -1
		}
		if i, ok := params[v]; ok {
			return nil, i
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if f, ok := sel.Obj().(*types.Var); ok && isOutboxish(f.Type()) {
				return f, -1
			}
		}
	case *ast.IndexExpr:
		return attribute(info, e.X, params, aliases)
	}
	return nil, -1
}

// buildAliases maps local variables to the outbox fields they alias via
// simple assignment (box := s.f, box := s.f[k]) or range (for _, box :=
// range s.boxes).
func buildAliases(info *types.Info, decl *ast.FuncDecl) map[*types.Var]*types.Var {
	aliases := map[*types.Var]*types.Var{}
	none := map[*types.Var]int{}
	ast.Inspect(decl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				v, _ := info.Defs[id].(*types.Var)
				if v == nil {
					v, _ = info.Uses[id].(*types.Var)
				}
				if v == nil || !isOutboxish(v.Type()) {
					continue
				}
				if f, _ := attribute(info, n.Rhs[i], none, aliases); f != nil {
					aliases[v] = f
				}
			}
		case *ast.RangeStmt:
			if n.Value == nil {
				return true
			}
			id, ok := n.Value.(*ast.Ident)
			if !ok {
				return true
			}
			v, _ := info.Defs[id].(*types.Var)
			if v == nil || !isOutboxish(v.Type()) {
				return true
			}
			if f, _ := attribute(info, n.X, none, aliases); f != nil {
				aliases[v] = f
			}
		}
		return true
	})
	return aliases
}

// paramVars maps fn's *wiring.Outbox-ish parameters to their indexes.
func paramVars(fn *types.Func) map[*types.Var]int {
	out := map[*types.Var]int{}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if isOutboxish(p.Type()) {
			out[p] = i
		}
	}
	return out
}

// isOutboxish reports whether t is *wiring.Outbox or a container of them.
func isOutboxish(t types.Type) bool {
	switch t := t.(type) {
	case *types.Pointer:
		return analysis.IsNamedType(t, wiringPath, "Outbox")
	case *types.Slice:
		return isOutboxish(t.Elem())
	case *types.Array:
		return isOutboxish(t.Elem())
	case *types.Map:
		return isOutboxish(t.Elem())
	case *types.Named:
		return analysis.IsNamedType(t, wiringPath, "Outbox")
	}
	return false
}

// isPollSig reports whether fn has the loop signature func(time.Time) bool.
func isPollSig(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	if !analysis.IsNamedType(sig.Params().At(0).Type(), "time", "Time") {
		return false
	}
	b, ok := sig.Results().At(0).Type().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

// fieldOwner reports whether field f is declared in named struct type recv.
func fieldOwner(f *types.Var, recv *types.Named) bool {
	st, ok := recv.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i) == f {
			return true
		}
	}
	return false
}
