package analysis

import (
	"fmt"
	"sort"

	"newtos/internal/analysis/loader"
)

// Finding is one diagnostic attributed to its analyzer, with the position
// already resolved for printing.
type Finding struct {
	Analyzer string
	Pos      string // "file:line:col", empty for position-less diagnostics
	Message  string
	// sortKey orders findings deterministically (file, line, col).
	file      string
	line, col int
}

func (f Finding) String() string {
	if f.Pos == "" {
		return fmt.Sprintf("%s: %s", f.Analyzer, f.Message)
	}
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run executes the suite over the loaded program. Per-package analyzers run
// once per target package; Global analyzers run once with the whole program
// and their reports are clipped to the targets. Diagnostics covered by a
// well-formed //lint:ignore directive are dropped; malformed directives are
// themselves findings (analyzer name "lint").
func Run(pr *loader.Program, targets []*loader.Package, analyzers []*Analyzer) ([]Finding, error) {
	ignores := BuildIgnoreIndex(pr.Fset, pr.Packages)
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var findings []Finding
	add := func(a *Analyzer, d Diagnostic) {
		if d.Pos.IsValid() && ignores.Suppressed(pr.Fset, a.Name, d.Pos) {
			return
		}
		f := Finding{Analyzer: a.Name, Message: d.Message}
		if d.Pos.IsValid() {
			p := pr.Fset.Position(d.Pos)
			f.Pos = p.String()
			f.file, f.line, f.col = p.Filename, p.Line, p.Column
		}
		findings = append(findings, f)
	}

	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pr.Fset,
			Program:  pr.Packages,
			Targets:  targets,
		}
		if a.Global {
			if len(targets) > 0 {
				pass.Files = targets[0].Files
				pass.Pkg = targets[0].Types
				pass.TypesInfo = targets[0].Info
			}
			pass.Report = func(d Diagnostic) {
				if d.Pos.IsValid() && !pass.InTargets(d.Pos) {
					return
				}
				add(a, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
			continue
		}
		for _, t := range targets {
			p := *pass
			p.Files, p.Pkg, p.TypesInfo = t.Files, t.Types, t.Info
			p.Report = func(d Diagnostic) { add(a, d) }
			if err := a.Run(&p); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, t.Path, err)
			}
		}
	}

	targetFiles := map[string]bool{}
	for _, t := range targets {
		for _, f := range t.Files {
			targetFiles[pr.Fset.Position(f.Pos()).Filename] = true
		}
	}
	for _, d := range ignores.Check(known, targetFiles) {
		findings = append(findings, Finding{Analyzer: "lint", Message: d.Message})
	}

	sort.SliceStable(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.Message < b.Message
	})
	return findings, nil
}
