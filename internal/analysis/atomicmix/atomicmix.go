// Package atomicmix enforces the all-or-nothing atomicity contract on
// struct fields: a field that is accessed through sync/atomic anywhere
// (atomic.AddUint64(&s.n, 1), atomic.LoadInt64(&s.t), ...) must be accessed
// through sync/atomic everywhere. A single plain read racing an atomic
// writer is still a data race — the outbox Dropped / trace counter pattern
// this stack uses for cross-goroutine observability makes the mix easy to
// introduce and -race unlikely to catch (observers run rarely).
//
// Composite-literal initialization is exempt: building a value before it is
// shared is the one idiomatically-safe plain write.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"newtos/internal/analysis"
	"newtos/internal/analysis/loader"
)

// Analyzer reports struct fields accessed both atomically and plainly.
// It is global: the atomic access and the plain access frequently live in
// different packages (counter owner vs observer).
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "a struct field accessed via sync/atomic anywhere must be " +
		"accessed atomically everywhere",
	Global: true,
	Run:    run,
}

type access struct {
	pos token.Pos
}

func run(pass *analysis.Pass) error {
	atomicUses := map[*types.Var][]access{} // field -> atomic access sites
	plainUses := map[*types.Var][]access{}  // field -> plain access sites

	for _, pkg := range pass.Program {
		collect(pkg, atomicUses, plainUses)
	}

	var fields []*types.Var
	for f := range atomicUses {
		fields = append(fields, f)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })
	for _, f := range fields {
		for _, p := range plainUses[f] {
			pass.Report(analysis.Diagnostic{
				Pos: p.pos,
				Message: "field " + f.Name() + " is accessed with sync/atomic " +
					"elsewhere; this plain access races it (use atomic, or an " +
					"atomic.* typed field)",
			})
		}
	}
	return nil
}

// collect records, for every field selection in pkg, whether it is the
// &-operand of a sync/atomic call (atomic) or anything else (plain).
func collect(pkg *loader.Package, atomicUses, plainUses map[*types.Var][]access) {
	info := pkg.Info

	// Selector expressions consumed as &x.f by a sync/atomic call.
	atomicOperand := map[*ast.SelectorExpr]bool{}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
					atomicOperand[sel] = true
				}
			}
			return true
		})
	}

	// Composite-literal initialization (S{n: 0}) is exempt by construction:
	// literal keys are plain identifiers, never field selections, so they
	// never reach the Selections map below.
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			field, ok := s.Obj().(*types.Var)
			if !ok || !field.IsField() {
				return true
			}
			if !isSyncable(field.Type()) {
				return true
			}
			if atomicOperand[sel] {
				atomicUses[field] = append(atomicUses[field], access{pos: sel.Pos()})
			} else {
				plainUses[field] = append(plainUses[field], access{pos: sel.Pos()})
			}
			return true
		})
	}
}

// isSyncable reports whether t is a type the sync/atomic functions operate
// on (the atomic.Int64-style wrapper types are safe by construction and
// never appear here: their fields are selected via methods).
func isSyncable(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int32, types.Int64, types.Uint32, types.Uint64, types.Uintptr:
		return true
	}
	return false
}
