package atomicmix_test

import (
	"testing"

	"newtos/internal/analysis/analysistest"
	"newtos/internal/analysis/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, "testdata", atomicmix.Analyzer, "a")
}
