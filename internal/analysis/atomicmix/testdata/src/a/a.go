// Package a exercises the atomicmix analyzer.
package a

import "sync/atomic"

// Counter mixes atomic and plain access to hits (bad) and uses total only
// plainly (fine).
type Counter struct {
	hits  uint64
	total uint64
}

func (c *Counter) Inc() {
	atomic.AddUint64(&c.hits, 1)
	c.total++
}

func (c *Counter) Read() uint64 {
	return c.hits // want `field hits is accessed with sync/atomic elsewhere; this plain access races it`
}

func (c *Counter) ReadAtomic() uint64 {
	return atomic.LoadUint64(&c.hits)
}

// NewCounter initializes via a composite literal: keys are plain
// identifiers, not field selections, so construction is exempt.
func NewCounter() *Counter {
	return &Counter{hits: 0, total: 0}
}

// debugRead is a torn-value-tolerant probe, annotated as such.
func (c *Counter) debugRead() uint64 {
	//lint:ignore atomicmix test-only probe; a torn read is acceptable here.
	return c.hits
}

var _ = (&Counter{}).debugRead
