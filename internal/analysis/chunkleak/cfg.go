package chunkleak

import (
	"go/ast"
)

// The leak check needs path sensitivity ("is there a path from the Alloc to
// a return that never mentions the chunk?"), so this file builds a small
// statement-level control-flow graph. It covers the structured subset of Go
// the engines use — blocks, if/else, for, range, switch, type switch,
// select, return, unlabeled break/continue, panic — and refuses functions
// using goto, labels, or fallthrough (the analyzer then skips the function
// rather than guess).

type cfgNode struct {
	// stmt is the statement this node represents (nil for the synthetic
	// exit node). For composite statements (if/for/switch heads) it is the
	// whole statement — the analyzer uses it to locate err-check branches.
	stmt ast.Stmt
	// use lists the sub-nodes this node actually evaluates (for a simple
	// statement, the statement itself; for an if head, only Init and Cond,
	// never the branch bodies). Use-checks scan these.
	use   []ast.Node
	succs []*cfgNode
	// terminates marks nodes that end the function by crashing
	// (panic/log.Fatal): paths through them never leak live chunks.
	terminates bool
}

type cfg struct {
	nodes []*cfgNode
	exit  *cfgNode
	// byStmt finds the node of a statement (alloc sites).
	byStmt map[ast.Stmt]*cfgNode
	// unsupported is set when the function uses control flow this builder
	// does not model; the analyzer must skip the function.
	unsupported bool
}

type cfgBuilder struct {
	g *cfg
	// breakTo / continueTo are the current unlabeled-branch targets.
	breakTo    []*cfgNode
	continueTo []*cfgNode
}

// buildCFG returns the graph of body and its entry node.
func buildCFG(body *ast.BlockStmt) (*cfg, *cfgNode) {
	g := &cfg{byStmt: map[ast.Stmt]*cfgNode{}}
	g.exit = &cfgNode{}
	g.nodes = append(g.nodes, g.exit)
	b := &cfgBuilder{g: g}
	entry := b.stmts(body.List, g.exit)
	return g, entry
}

func (b *cfgBuilder) newNode(s ast.Stmt) *cfgNode {
	n := &cfgNode{stmt: s}
	if s != nil {
		n.use = []ast.Node{s}
		b.g.byStmt[s] = n
	}
	b.g.nodes = append(b.g.nodes, n)
	return n
}

// newHead makes a node for a composite statement that only evaluates the
// given sub-expressions (branch bodies get their own nodes).
func (b *cfgBuilder) newHead(s ast.Stmt, eval ...ast.Node) *cfgNode {
	n := b.newNode(s)
	n.use = nil
	for _, e := range eval {
		if e != nil {
			n.use = append(n.use, e)
		}
	}
	return n
}

// stmts wires a statement list and returns its entry, falling through to
// next at the end.
func (b *cfgBuilder) stmts(list []ast.Stmt, next *cfgNode) *cfgNode {
	entry := next
	for i := len(list) - 1; i >= 0; i-- {
		entry = b.stmt(list[i], entry)
	}
	return entry
}

// stmt wires one statement and returns its entry node.
func (b *cfgBuilder) stmt(s ast.Stmt, next *cfgNode) *cfgNode {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(s.List, next)

	case *ast.IfStmt:
		head := b.newHead(s, s.Init, s.Cond) // succs are the branches
		thenEntry := b.stmts(s.Body.List, next)
		elseEntry := next
		if s.Else != nil {
			elseEntry = b.stmt(s.Else, next)
		}
		head.succs = []*cfgNode{thenEntry, elseEntry}
		return head

	case *ast.ForStmt:
		head := b.newHead(s, s.Cond)
		var post *cfgNode
		if s.Post != nil {
			post = b.newNode(s.Post)
			post.succs = []*cfgNode{head}
		} else {
			post = head
		}
		b.breakTo = append(b.breakTo, next)
		b.continueTo = append(b.continueTo, post)
		bodyEntry := b.stmts(s.Body.List, post)
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		b.continueTo = b.continueTo[:len(b.continueTo)-1]
		head.succs = []*cfgNode{bodyEntry}
		if s.Cond != nil {
			head.succs = append(head.succs, next) // cond may be false
		}
		if s.Init != nil {
			init := b.newNode(s.Init)
			init.succs = []*cfgNode{head}
			return init
		}
		return head

	case *ast.RangeStmt:
		head := b.newHead(s, s.Key, s.Value, s.X)
		b.breakTo = append(b.breakTo, next)
		b.continueTo = append(b.continueTo, head)
		bodyEntry := b.stmts(s.Body.List, head)
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		b.continueTo = b.continueTo[:len(b.continueTo)-1]
		head.succs = []*cfgNode{bodyEntry, next}
		return head

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var head *cfgNode
		var body *ast.BlockStmt
		if sw, ok := s.(*ast.SwitchStmt); ok {
			head = b.newHead(s, sw.Init, sw.Tag)
			body = sw.Body
		} else {
			ts := s.(*ast.TypeSwitchStmt)
			head = b.newHead(s, ts.Init, ts.Assign)
			body = ts.Body
		}
		// Case-clause guard expressions are evaluated by the head.
		for _, c := range body.List {
			for _, e := range c.(*ast.CaseClause).List {
				head.use = append(head.use, e)
			}
		}
		b.breakTo = append(b.breakTo, next)
		hasDefault := false
		for _, c := range body.List {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			head.succs = append(head.succs, b.stmts(cc.Body, next))
		}
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		if !hasDefault {
			head.succs = append(head.succs, next)
		}
		return head

	case *ast.SelectStmt:
		head := b.newHead(s)
		b.breakTo = append(b.breakTo, next)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			entry := b.stmts(cc.Body, next)
			if cc.Comm != nil {
				comm := b.newNode(cc.Comm)
				comm.succs = []*cfgNode{entry}
				entry = comm
			}
			head.succs = append(head.succs, entry)
		}
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		if len(head.succs) == 0 {
			head.succs = []*cfgNode{next}
		}
		return head

	case *ast.ReturnStmt:
		n := b.newNode(s)
		n.succs = []*cfgNode{b.g.exit}
		return n

	case *ast.BranchStmt:
		if s.Label != nil {
			b.g.unsupported = true
			return b.newNode(s)
		}
		n := b.newNode(s)
		switch s.Tok.String() {
		case "break":
			if len(b.breakTo) == 0 {
				b.g.unsupported = true
				return n
			}
			n.succs = []*cfgNode{b.breakTo[len(b.breakTo)-1]}
		case "continue":
			if len(b.continueTo) == 0 {
				b.g.unsupported = true
				return n
			}
			n.succs = []*cfgNode{b.continueTo[len(b.continueTo)-1]}
		default: // goto, fallthrough
			b.g.unsupported = true
		}
		return n

	case *ast.LabeledStmt:
		b.g.unsupported = true
		return b.stmt(s.Stmt, next)

	case *ast.ExprStmt:
		n := b.newNode(s)
		if isCrash(s.X) {
			n.terminates = true
			n.succs = []*cfgNode{b.g.exit}
		} else {
			n.succs = []*cfgNode{next}
		}
		return n

	default:
		// Assignments, declarations, sends, defers, go, inc/dec, empty:
		// straight-line.
		n := b.newNode(s)
		n.succs = []*cfgNode{next}
		return n
	}
}

// isCrash recognizes calls that never return: panic(...) and log.Fatal*.
func isCrash(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok && pkg.Name == "log" {
			switch fun.Sel.Name {
			case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
				return true
			}
		}
	}
	return false
}
