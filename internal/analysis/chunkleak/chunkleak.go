// Package chunkleak enforces the shm chunk ownership contract: a chunk
// obtained from Pool.Alloc must, on every control-flow path to the
// function's return, be freed (Pool.Free), staged into a request/outbox, or
// handed off to another owner — mentioning the rich pointer at all (as a
// call argument, in a composite literal, in an assignment, in a return)
// counts as the hand-off. What it catches is the early-return leak class
// from PR 3/PR 4: an error path between Alloc and the hand-off that returns
// with the chunk still owned by nobody, pinning it in the pool forever.
//
// The branch guarded by the Alloc's own error (if err != nil { ... }) is
// exempt: a failed Alloc returns no chunk. Paths that end in panic or
// log.Fatal are exempt too. Functions using goto, labels, or fallthrough
// are skipped rather than guessed at.
package chunkleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"newtos/internal/analysis"
)

const shmPath = "newtos/internal/shm"

// Analyzer reports pool chunks that can reach a return unconsumed.
var Analyzer = &analysis.Analyzer{
	Name: "chunkleak",
	Doc: "a chunk from shm Pool.Alloc must reach Free, a stage/send, or a " +
		"hand-off on every path to return",
	Run: run,
}

// alloc is one tracked Pool.Alloc statement.
type alloc struct {
	stmt *ast.AssignStmt
	ptr  types.Object // the RichPtr variable
	err  types.Object // the error variable (nil when blank)
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Analyze the function body, and every closure inside it as its
			// own flow (drain handlers and completion callbacks allocate
			// too).
			checkBody(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkBody(pass, fl.Body)
				}
				return true
			})
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	allocs := findAllocs(info, body)
	if len(allocs) == 0 {
		return
	}
	g, _ := buildCFG(body)
	if g.unsupported {
		return // goto/label/fallthrough: out of model, skip the function
	}

	for _, al := range allocs {
		if deferConsumes(info, body, al.ptr) {
			continue
		}
		exempt := exemptSpans(info, body, al.err)
		start := g.byStmt[ast.Stmt(al.stmt)]
		if start == nil {
			continue
		}
		if leaks(pass, g, start, al, exempt) {
			pass.Report(analysis.Diagnostic{
				Pos: al.stmt.Pos(),
				Message: "chunk " + al.ptr.Name() + " from Pool.Alloc may reach a " +
					"return without Free, stage, or hand-off on some path",
			})
		}
	}
}

// findAllocs collects `ptr, buf, err := pool.Alloc()` statements at the top
// level of body (not inside nested closures — each closure is analyzed as
// its own flow).
func findAllocs(info *types.Info, body *ast.BlockStmt) []alloc {
	var out []alloc
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 3 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(info, call)
		if !analysis.IsMethod(fn, shmPath, "Pool", "Alloc") {
			return true
		}
		ptrObj := lhsObject(info, as.Lhs[0])
		if ptrObj == nil {
			return true // blank: the chunk is discarded, nothing to track
		}
		out = append(out, alloc{stmt: as, ptr: ptrObj, err: lhsObject(info, as.Lhs[2])})
		return true
	})
	return out
}

func lhsObject(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// deferConsumes reports whether a defer in body mentions the chunk — a
// deferred Free covers every path at once.
func deferConsumes(info *types.Info, body *ast.BlockStmt, ptr types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if ds, ok := n.(*ast.DeferStmt); ok && analysis.UsesObject(info, ds, ptr) {
			found = true
		}
		return true
	})
	return found
}

// span is a source range used to mark exempt (alloc-failed) branches.
type span struct{ pos, end token.Pos }

func (s span) contains(p token.Pos) bool { return s.pos <= p && p < s.end }

// exemptSpans finds the branches guarded by the alloc's own error check:
// the then-branch of `if err != nil` and the else-branch of `if err == nil`.
func exemptSpans(info *types.Info, body *ast.BlockStmt, errObj types.Object) []span {
	if errObj == nil {
		return nil
	}
	var out []span
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cmp, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		if x, ok := ast.Unparen(cmp.X).(*ast.Ident); ok && isNil(info, cmp.Y) {
			id = x
		} else if y, ok := ast.Unparen(cmp.Y).(*ast.Ident); ok && isNil(info, cmp.X) {
			id = y
		}
		if id == nil || info.Uses[id] != errObj {
			return true
		}
		switch cmp.Op {
		case token.NEQ:
			out = append(out, span{ifs.Body.Pos(), ifs.Body.End()})
		case token.EQL:
			if ifs.Else != nil {
				out = append(out, span{ifs.Else.Pos(), ifs.Else.End()})
			}
		}
		return true
	})
	return out
}

func isNil(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil" && info.Uses[id] == types.Universe.Lookup("nil")
}

// leaks walks the CFG from the alloc looking for a path to exit on which
// the chunk is never mentioned and that is not an alloc-failure branch.
func leaks(pass *analysis.Pass, g *cfg, start *cfgNode, al alloc, exempt []span) bool {
	satisfied := func(n *cfgNode) bool {
		if n == start {
			return false // the alloc statement itself defines, not consumes
		}
		if n.terminates {
			return true // crash path
		}
		if n.stmt != nil {
			p := n.stmt.Pos()
			for _, s := range exempt {
				if s.contains(p) {
					return true // alloc failed on this branch; nothing to free
				}
			}
		}
		for _, u := range n.use {
			if analysis.UsesObject(pass.TypesInfo, u, al.ptr) {
				return true
			}
		}
		return false
	}

	seen := map[*cfgNode]bool{}
	work := append([]*cfgNode{}, start.succs...)
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		if n == g.exit {
			return true
		}
		if satisfied(n) {
			continue
		}
		work = append(work, n.succs...)
	}
	return false
}
