// Package a exercises the chunkleak analyzer.
package a

import (
	"newtos/internal/shm"
)

// leakOnBranch loses the chunk when cond is true.
func leakOnBranch(pool *shm.Pool, cond bool) error {
	ptr, buf, err := pool.Alloc() // want `chunk ptr from Pool.Alloc may reach a return without Free, stage, or hand-off`
	if err != nil {
		return err
	}
	if cond {
		return nil
	}
	_ = buf
	return pool.Free(ptr)
}

// freeAllPaths consumes the chunk on every branch.
func freeAllPaths(pool *shm.Pool, cond bool) error {
	ptr, _, err := pool.Alloc()
	if err != nil {
		return err
	}
	if cond {
		return pool.Free(ptr)
	}
	return pool.Free(ptr)
}

// handOff passes ownership to a sink; mentioning the pointer counts.
func handOff(pool *shm.Pool, sink func(shm.RichPtr)) error {
	ptr, _, err := pool.Alloc()
	if err != nil {
		return err
	}
	sink(ptr)
	return nil
}

// deferredFree covers every path with one defer.
func deferredFree(pool *shm.Pool, cond bool) error {
	ptr, _, err := pool.Alloc()
	if err != nil {
		return err
	}
	defer pool.Free(ptr)
	if cond {
		return nil
	}
	return nil
}

// crashPath may panic before the free; crash paths are exempt.
func crashPath(pool *shm.Pool, cond bool) {
	ptr, _, err := pool.Alloc()
	if err != nil {
		return
	}
	if cond {
		panic("invariant broken")
	}
	_ = pool.Free(ptr)
}

// loopLeak breaks out of the loop with the chunk still owned by nobody.
func loopLeak(pool *shm.Pool, n int) {
	for i := 0; i < n; i++ {
		ptr, _, err := pool.Alloc() // want `chunk ptr from Pool.Alloc may reach a return`
		if err != nil {
			return
		}
		if i == 3 {
			break
		}
		_ = pool.Free(ptr)
	}
}

// inClosure allocates inside a handler closure; closures are analyzed as
// their own flows.
func inClosure(pool *shm.Pool, run func(func(bool) error)) {
	run(func(cond bool) error {
		ptr, _, err := pool.Alloc() // want `chunk ptr from Pool.Alloc may reach a return`
		if err != nil {
			return err
		}
		if cond {
			return nil
		}
		return pool.Free(ptr)
	})
}

// suppressed shows the checked escape hatch.
func suppressed(pool *shm.Pool, cond bool) error {
	//lint:ignore chunkleak the chunk is owned by the test harness after this call.
	ptr, _, err := pool.Alloc()
	if err != nil {
		return err
	}
	if cond {
		return nil
	}
	return pool.Free(ptr)
}
