package chunkleak_test

import (
	"testing"

	"newtos/internal/analysis/analysistest"
	"newtos/internal/analysis/chunkleak"
)

func TestChunkleak(t *testing.T) {
	analysistest.Run(t, "testdata", chunkleak.Analyzer, "a")
}
