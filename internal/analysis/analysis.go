// Package analysis is a self-contained static-analysis framework for this
// repository: a deliberately small mirror of the golang.org/x/tools
// go/analysis API (Analyzer, Pass, Diagnostic) built on the standard
// library only, because the build environment is offline and the module has
// no external dependencies.
//
// The shape is kept close to go/analysis so the netlint analyzers can be
// ported to the real framework mechanically if x/tools ever becomes
// available: an Analyzer owns a Run function over a Pass, a Pass carries one
// type-checked package plus a Report sink, and diagnostics are positions
// with messages. Two extensions cover what this repo needs without facts:
//
//   - Global analyzers (Analyzer.Global) run once over the whole loaded
//     program instead of once per package, which is how hotloop follows
//     call chains from server Poll loops into engine packages.
//
//   - Suppression directives. A line of the form
//
//     //lint:ignore <analyzer> <reason>
//
//     on the flagged line or the line directly above it suppresses that
//     analyzer's diagnostics for that line. The directive is checked: the
//     analyzer name must exist in the running suite and the reason must be
//     non-empty, otherwise the directive itself is reported.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"newtos/internal/analysis/loader"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in
	// //lint:ignore directives (e.g. "chunkleak").
	Name string
	// Doc is the one-paragraph contract this analyzer enforces.
	Doc string
	// Global makes the analyzer run once with Pass.Program holding every
	// loaded package, instead of once per target package. Use it for
	// checks that follow references across package boundaries.
	Global bool
	// Run performs the analysis and reports findings via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries the input to one Analyzer.Run invocation.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files, Pkg and TypesInfo describe the single package under analysis.
	// For Global analyzers they describe the first target package and are
	// mostly irrelevant; such analyzers should walk Program instead.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Program is every package loaded from the module, including
	// dependencies of the targets (Global analyzers need their bodies).
	Program []*loader.Package
	// Targets is the subset of Program named by the load patterns.
	// Global analyzers should restrict reports to these.
	Targets []*loader.Package
	// Report records one finding.
	Report func(Diagnostic)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// InTargets reports whether pos falls inside one of the pass's target
// packages — Global analyzers use it to avoid reporting into dependency
// packages that were only loaded for their bodies.
func (p *Pass) InTargets(pos token.Pos) bool {
	f := p.Fset.File(pos)
	if f == nil {
		return false
	}
	for _, t := range p.Targets {
		for _, af := range t.Files {
			if p.Fset.File(af.Pos()) == f {
				return true
			}
		}
	}
	return false
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	file     string
	line     int
}

// IgnoreIndex resolves suppression directives for a loaded program.
type IgnoreIndex struct {
	// byLine maps file:line to the directives that govern that line.
	byLine map[string][]*ignoreDirective
	all    []*ignoreDirective
}

const ignorePrefix = "//lint:ignore "

// BuildIgnoreIndex scans every file in the program for //lint:ignore
// directives. A directive suppresses diagnostics on its own line and on the
// line immediately below it (the usual "comment above the statement" form).
func BuildIgnoreIndex(fset *token.FileSet, pkgs []*loader.Package) *IgnoreIndex {
	idx := &IgnoreIndex{byLine: make(map[string][]*ignoreDirective)}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
					name, reason, _ := strings.Cut(rest, " ")
					pos := fset.Position(c.Pos())
					d := &ignoreDirective{
						analyzer: name,
						reason:   strings.TrimSpace(reason),
						file:     pos.Filename,
						line:     pos.Line,
					}
					idx.all = append(idx.all, d)
					idx.byLine[key(pos.Filename, pos.Line)] = append(idx.byLine[key(pos.Filename, pos.Line)], d)
					idx.byLine[key(pos.Filename, pos.Line+1)] = append(idx.byLine[key(pos.Filename, pos.Line+1)], d)
				}
			}
		}
	}
	return idx
}

func key(file string, line int) string {
	return file + ":" + itoa(line)
}

// Suppressed reports whether a diagnostic from the named analyzer at pos is
// covered by a well-formed ignore directive.
func (ix *IgnoreIndex) Suppressed(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	p := fset.Position(pos)
	for _, d := range ix.byLine[key(p.Filename, p.Line)] {
		if d.analyzer == analyzer && d.reason != "" {
			return true
		}
	}
	return false
}

// Check validates every directive in the given files against the suite:
// the analyzer name must be known and a reason must be given. Malformed
// directives are returned as diagnostics so a typo cannot silently disable
// enforcement.
func (ix *IgnoreIndex) Check(known map[string]bool, inFiles map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range ix.all {
		if !inFiles[d.file] {
			continue
		}
		switch {
		case d.analyzer == "" || !known[d.analyzer]:
			out = append(out, Diagnostic{Message: d.file + ":" + itoa(d.line) +
				": lint:ignore names unknown analyzer " + quote(d.analyzer)})
		case d.reason == "":
			out = append(out, Diagnostic{Message: d.file + ":" + itoa(d.line) +
				": lint:ignore " + d.analyzer + " needs a reason"})
		}
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

func quote(s string) string { return `"` + s + `"` }
