// Package suite registers the netlint analyzers. It exists apart from
// package analysis so individual analyzers can import the framework without
// a cycle, and apart from cmd/netlint so tests can run the exact suite CI
// runs.
package suite

import (
	"newtos/internal/analysis"
	"newtos/internal/analysis/atomicmix"
	"newtos/internal/analysis/chunkleak"
	"newtos/internal/analysis/hotloop"
	"newtos/internal/analysis/opswitch"
	"newtos/internal/analysis/outboxflush"
)

// Analyzers is the full netlint suite, in reporting-name order.
var Analyzers = []*analysis.Analyzer{
	atomicmix.Analyzer,
	chunkleak.Analyzer,
	hotloop.Analyzer,
	opswitch.Analyzer,
	outboxflush.Analyzer,
}
