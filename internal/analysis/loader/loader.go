// Package loader loads and type-checks packages of this module for the
// netlint analyzers, using only the standard library. Packages inside the
// module are parsed and type-checked from source (so analyzers see their
// bodies); standard-library imports are satisfied by the go/importer source
// importer, which reads GOROOT and therefore works offline.
package loader

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked module package with its syntax retained.
type Package struct {
	// Path is the import path ("newtos/internal/ipeng"), or the directory
	// path for packages loaded from outside the module tree (testdata).
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the result of one Load: all module packages reached, in a
// deterministic order (dependencies before dependents).
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
	byPath   map[string]*Package
}

// Package returns the loaded package with the given path, or nil.
func (pr *Program) Package(path string) *Package { return pr.byPath[path] }

// ModuleRoot walks up from dir to the enclosing go.mod directory.
func ModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("loader: no go.mod above %s", dir)
		}
		d = parent
	}
}

func moduleName(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if name, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(name), nil
		}
	}
	return "", fmt.Errorf("loader: no module line in %s/go.mod", root)
}

// Load type-checks the packages named by patterns. Each pattern is either a
// directory path (absolute or relative to root), a module import path, or a
// "..." wildcard over either form. The returned program also contains every
// module package the targets transitively import. The target packages are
// returned in pattern order (wildcards expand sorted).
func Load(root string, patterns ...string) (*Program, []*Package, error) {
	modName, err := moduleName(root)
	if err != nil {
		return nil, nil, err
	}
	ld := &loaderState{
		fset:    token.NewFileSet(),
		root:    root,
		module:  modName,
		byPath:  make(map[string]*Package),
		loading: make(map[string]bool),
	}
	ld.stdlib = importer.ForCompiler(ld.fset, "source", nil)

	var targets []*Package
	for _, pat := range patterns {
		dirs, err := ld.expand(pat)
		if err != nil {
			return nil, nil, err
		}
		for _, dir := range dirs {
			pkg, err := ld.loadDir(dir)
			if err != nil {
				return nil, nil, err
			}
			if pkg != nil {
				targets = append(targets, pkg)
			}
		}
	}
	pr := &Program{Fset: ld.fset, Packages: ld.order, byPath: ld.byPath}
	return pr, targets, nil
}

type loaderState struct {
	fset    *token.FileSet
	root    string
	module  string
	stdlib  types.Importer
	byPath  map[string]*Package
	order   []*Package
	loading map[string]bool
}

// expand resolves one pattern to a sorted list of package directories.
func (ld *loaderState) expand(pat string) ([]string, error) {
	recursive := false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive, pat = true, rest
	} else if pat == "..." {
		recursive, pat = true, "."
	}
	dir := pat
	if rest, ok := strings.CutPrefix(pat, ld.module); ok {
		dir = "." + rest
	}
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(ld.root, dir)
	}
	if !recursive {
		return []string{dir}, nil
	}
	var dirs []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// pathFor derives the canonical package path for a directory: an import
// path when the directory is inside the module, the cleaned directory path
// otherwise (testdata packages).
func (ld *loaderState) pathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	if rel, err := filepath.Rel(ld.root, abs); err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		if rel == "." {
			return ld.module, nil
		}
		return ld.module + "/" + filepath.ToSlash(rel), nil
	}
	return abs, nil
}

// loadDir parses and type-checks the package in dir (once; cached by path).
// Directories with no buildable Go files return (nil, nil).
func (ld *loaderState) loadDir(dir string) (*Package, error) {
	path, err := ld.pathFor(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := ld.byPath[path]; ok {
		return p, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("loader: import cycle through %s", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, fmt.Errorf("loader: %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: (*progImporter)(ld)}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: typecheck %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	ld.byPath[path] = p
	ld.order = append(ld.order, p)
	return p, nil
}

// progImporter satisfies imports during type checking: module paths load
// recursively from source, everything else (the standard library) goes to
// the source importer.
type progImporter loaderState

func (pi *progImporter) Import(path string) (*types.Package, error) {
	ld := (*loaderState)(pi)
	if path == ld.module || strings.HasPrefix(path, ld.module+"/") {
		dir := filepath.Join(ld.root, strings.TrimPrefix(path, ld.module))
		p, err := ld.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("loader: no Go files in %s", dir)
		}
		return p.Types, nil
	}
	return ld.stdlib.Import(path)
}
