// Package analysistest runs one analyzer over packages under a testdata
// tree and checks its diagnostics against expectations written in the
// sources, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	pool.Free(ptr) // want `regexp matching the message`
//
// A want comment expects exactly one diagnostic on its line whose message
// matches the (back)quoted regular expression; several quoted regexps in one
// comment expect several diagnostics. Diagnostics with no matching want, and
// wants with no matching diagnostic, fail the test.
//
// Testdata packages live under <testdata>/src/<name> and may import real
// module packages (newtos/internal/shm, ...) — the loader resolves them from
// the enclosing module.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"newtos/internal/analysis"
	"newtos/internal/analysis/loader"
)

// want is one expectation parsed from a `// want "re"` comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each named package from testdata/src, applies the analyzer, and
// reports mismatches between its diagnostics and the want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	testdata, err := filepath.Abs(testdata)
	if err != nil {
		t.Fatal(err)
	}
	root, err := loader.ModuleRoot(testdata)
	if err != nil {
		t.Fatal(err)
	}
	var patterns []string
	for _, p := range pkgs {
		patterns = append(patterns, filepath.Join(testdata, "src", p))
	}
	pr, targets, err := loader.Load(root, patterns...)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run(pr, targets, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, pr, targets)
	for _, f := range findings {
		file, line, msg := locate(f)
		if file == "" {
			t.Errorf("diagnostic without position: %s: %s", f.Analyzer, f.Message)
			continue
		}
		if w := match(wants, file, line, msg); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("%s:%d: unexpected diagnostic: %s", file, line, msg)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// match finds the first unmatched want on file:line whose regexp matches.
func match(wants []*want, file string, line int, msg string) *want {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			return w
		}
	}
	return nil
}

// locate extracts (file, line, message) from a finding. Position-less
// findings (directive checks) carry "file:line: " in the message instead.
func locate(f analysis.Finding) (string, int, string) {
	if f.Pos != "" {
		// Pos is file:line:col; the file part may contain colons on other
		// platforms, so split from the right.
		rest := f.Pos[:strings.LastIndexByte(f.Pos, ':')] // drop :col
		i := strings.LastIndexByte(rest, ':')
		if i < 0 {
			return "", 0, f.Message
		}
		line, err := strconv.Atoi(rest[i+1:])
		if err != nil {
			return "", 0, f.Message
		}
		return rest[:i], line, f.Message
	}
	// "path/to/file.go:NN: message"
	m := posInMessage.FindStringSubmatch(f.Message)
	if m == nil {
		return "", 0, f.Message
	}
	line, _ := strconv.Atoi(m[2])
	return m[1], line, m[3]
}

var posInMessage = regexp.MustCompile(`^(.+\.go):(\d+): (.*)$`)

// collectWants parses `// want "re" "re"` comments in the target files.
func collectWants(t *testing.T, pr *loader.Program, targets []*loader.Package) []*want {
	t.Helper()
	var out []*want
	for _, pkg := range targets {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//")
					if !ok {
						continue // a /* */ group; wants are line comments
					}
					text = strings.TrimSpace(text)
					rest, ok := strings.CutPrefix(text, "want ")
					if !ok {
						continue
					}
					pos := pr.Fset.Position(c.Pos())
					for _, raw := range splitQuoted(t, pos.String(), rest) {
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
						}
						out = append(out, &want{
							file: pos.Filename,
							line: pos.Line,
							re:   re,
							raw:  raw,
						})
					}
				}
			}
		}
	}
	return out
}

// splitQuoted extracts the quoted or backquoted regexps of a want comment.
func splitQuoted(t *testing.T, pos, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quoted string
		switch s[0] {
		case '"':
			end := strings.IndexByte(s[1:], '"')
			if end < 0 {
				t.Fatalf("%s: unterminated want string: %s", pos, s)
			}
			quoted = s[:end+2]
			s = s[end+2:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want string: %s", pos, s)
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
			continue
		default:
			t.Fatalf("%s: want expects quoted regexps, got: %s", pos, s)
		}
		unq, err := strconv.Unquote(quoted)
		if err != nil {
			t.Fatalf("%s: bad want string %s: %v", pos, quoted, err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s)
	}
	return out
}
