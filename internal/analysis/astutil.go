package analysis

import (
	"go/ast"
	"go/types"
)

// Callee resolves the statically-called function or method of a call
// expression: an identifier (pkg-level func, local func value loses to nil),
// or a selector (method or imported func). Returns nil for indirect calls,
// conversions and builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // qualified identifier pkg.F
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// IsFunc reports whether fn is the package-level function pkgPath.name.
func IsFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && recvTypeName(fn) == ""
}

// IsMethod reports whether fn is the method recvName.name declared in
// pkgPath (pointer and value receivers both match).
func IsMethod(fn *types.Func, pkgPath, recvName, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && recvTypeName(fn) == recvName
}

// recvTypeName returns the name of fn's receiver named type ("" for
// package-level functions).
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// NamedOf unwraps pointers and returns the named type of t, or nil.
func NamedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// IsNamedType reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	n := NamedOf(t)
	return n != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// UsesObject reports whether any identifier under node refers to obj.
func UsesObject(info *types.Info, node ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
			found = true
		}
		return true
	})
	return found
}
