package kipc

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newTestKernel() *Kernel {
	return New(Config{}) // zero costs: tests exercise semantics, not timing
}

func TestRegisterLookup(t *testing.T) {
	k := newTestKernel()
	a, err := k.Register("a", nil)
	if err != nil {
		t.Fatal(err)
	}
	id, ok := k.Lookup("a")
	if !ok || id != a.ID() {
		t.Fatalf("lookup = %d, %v", id, ok)
	}
	// Re-registering the same name revokes the old endpoint (a restarted
	// incarnation takes over).
	a2, err := k.Register("a", nil)
	if err != nil {
		t.Fatalf("re-register: %v", err)
	}
	if id2, _ := k.Lookup("a"); id2 != a2.ID() || id2 == a.ID() {
		t.Fatalf("lookup after re-register = %d", id2)
	}
	if _, err := a.Receive(Any, time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Fatalf("old endpoint still alive: %v", err)
	}
	if _, ok := k.Lookup("nope"); ok {
		t.Fatal("lookup of missing name succeeded")
	}
}

func TestSendReceiveRendezvous(t *testing.T) {
	k := newTestKernel()
	a, _ := k.Register("a", nil)
	b, _ := k.Register("b", nil)

	var wg sync.WaitGroup
	wg.Add(1)
	delivered := false
	go func() {
		defer wg.Done()
		if err := a.Send(b.ID(), Msg{Type: 7, Args: [6]uint64{1, 2}}); err != nil {
			t.Errorf("send: %v", err)
		}
		delivered = true
	}()
	m, err := b.Receive(Any, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.From != a.ID() || m.Type != 7 || m.Args[1] != 2 {
		t.Fatalf("msg = %+v", m)
	}
	wg.Wait()
	if !delivered {
		t.Fatal("sender did not unblock")
	}
}

func TestSendBlocksUntilReceived(t *testing.T) {
	k := newTestKernel()
	a, _ := k.Register("a", nil)
	b, _ := k.Register("b", nil)
	done := make(chan struct{})
	go func() {
		_ = a.Send(b.ID(), Msg{Type: 1})
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("send completed before receive (not synchronous)")
	case <-time.After(30 * time.Millisecond):
	}
	if _, err := b.Receive(Any, time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("sender still blocked after receive")
	}
}

func TestReceiveFromSpecificSource(t *testing.T) {
	k := newTestKernel()
	a, _ := k.Register("a", nil)
	b, _ := k.Register("b", nil)
	c, _ := k.Register("c", nil)

	go func() { _ = a.Send(c.ID(), Msg{Type: 10}) }()
	go func() { _ = b.Send(c.ID(), Msg{Type: 20}) }()

	// Wait for both to be queued.
	time.Sleep(20 * time.Millisecond)
	m, err := c.Receive(b.ID(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != 20 {
		t.Fatalf("selective receive got type %d", m.Type)
	}
	m, err = c.Receive(a.ID(), time.Second)
	if err != nil || m.Type != 10 {
		t.Fatalf("second receive = %+v, %v", m, err)
	}
}

func TestReceiveTimeout(t *testing.T) {
	k := newTestKernel()
	a, _ := k.Register("a", nil)
	start := time.Now()
	_, err := a.Receive(Any, 25*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("returned too early")
	}
}

func TestNotifyNonBlockingAndCoalesced(t *testing.T) {
	k := newTestKernel()
	a, _ := k.Register("a", nil)
	b, _ := k.Register("b", nil)
	// Multiple notifies coalesce into one bit.
	for i := 0; i < 5; i++ {
		if err := a.Notify(b.ID()); err != nil {
			t.Fatal(err)
		}
	}
	m, err := b.Receive(Any, time.Second)
	if err != nil || m.Type != MsgNotify || m.From != a.ID() {
		t.Fatalf("notify msg = %+v, %v", m, err)
	}
	if _, err := b.TryReceive(Any); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("coalescing failed: %v", err)
	}
}

func TestNotifyBeatsQueuedSend(t *testing.T) {
	k := newTestKernel()
	a, _ := k.Register("a", nil)
	b, _ := k.Register("b", nil)
	go func() { _ = a.Send(b.ID(), Msg{Type: 1}) }()
	time.Sleep(20 * time.Millisecond)
	_ = a.Notify(b.ID())
	m, err := b.Receive(Any, time.Second)
	if err != nil || m.Type != MsgNotify {
		t.Fatalf("first = %+v, %v (notifications must have priority)", m, err)
	}
	m, err = b.Receive(Any, time.Second)
	if err != nil || m.Type != 1 {
		t.Fatalf("second = %+v, %v", m, err)
	}
}

func TestInterrupt(t *testing.T) {
	k := newTestKernel()
	drv, _ := k.Register("drv", nil)
	if err := k.Interrupt(drv.ID()); err != nil {
		t.Fatal(err)
	}
	m, err := drv.Receive(Hardware, time.Second)
	if err != nil || m.From != Hardware || m.Type != MsgNotify {
		t.Fatalf("irq = %+v, %v", m, err)
	}
}

func TestGrantDataIsCopied(t *testing.T) {
	k := newTestKernel()
	a, _ := k.Register("a", nil)
	b, _ := k.Register("b", nil)
	buf := []byte{1, 2, 3}
	go func() { _ = a.Send(b.ID(), Msg{Type: 1, Data: buf}) }()
	m, err := b.Receive(Any, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // sender mutates after delivery
	if m.Data[0] != 1 {
		t.Fatal("grant data aliased, not copied")
	}
}

func TestSendRec(t *testing.T) {
	k := newTestKernel()
	cli, _ := k.Register("cli", nil)
	srv, _ := k.Register("srv", nil)
	go func() {
		m, err := srv.Receive(Any, time.Second)
		if err != nil {
			t.Errorf("srv recv: %v", err)
			return
		}
		_ = srv.Send(m.From, Msg{Type: m.Type + 1})
	}()
	rep, err := cli.SendRec(srv.ID(), Msg{Type: 41})
	if err != nil || rep.Type != 42 {
		t.Fatalf("sendrec = %+v, %v", rep, err)
	}
}

func TestCloseUnblocksSenders(t *testing.T) {
	k := newTestKernel()
	a, _ := k.Register("a", nil)
	b, _ := k.Register("b", nil)
	errc := make(chan error, 1)
	go func() { errc <- a.Send(b.ID(), Msg{Type: 1}) }()
	time.Sleep(20 * time.Millisecond)
	b.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("sender got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("sender not unblocked by close")
	}
	// Name released: a new incarnation can register.
	if _, err := k.Register("b", nil); err != nil {
		t.Fatalf("re-register after close: %v", err)
	}
	// Sends to the dead endpoint fail.
	if err := a.Send(b.ID(), Msg{}); !errors.Is(err, ErrNoEndpoint) {
		t.Fatalf("send to closed: %v", err)
	}
}

// testWaker counts rings atomically: the kernel rings it from the sender's
// goroutine while the test goroutine reads the count.
type testWaker struct{ n atomic.Int32 }

func (w *testWaker) Ring() { w.n.Add(1) }

func TestWakerRungOnArrival(t *testing.T) {
	k := newTestKernel()
	w := &testWaker{}
	b, _ := k.Register("b", w)
	a, _ := k.Register("a", nil)
	_ = a.Notify(b.ID())
	if w.n.Load() == 0 {
		t.Fatal("waker not rung on notify")
	}
	go func() { _ = a.Send(b.ID(), Msg{}) }()
	time.Sleep(20 * time.Millisecond)
	if w.n.Load() < 2 {
		t.Fatal("waker not rung on send")
	}
	if _, err := b.Receive(Any, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Receive(Any, time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestTrapCostCharged(t *testing.T) {
	k := New(Config{TrapCost: 200 * time.Microsecond})
	a, _ := k.Register("a", nil)
	b, _ := k.Register("b", nil)
	go func() {
		m, _ := b.Receive(Any, time.Second)
		_ = m
	}()
	time.Sleep(10 * time.Millisecond)
	start := time.Now()
	if err := a.Send(b.ID(), Msg{}); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 150*time.Microsecond {
		t.Fatal("trap cost not charged on send")
	}
}

func BenchmarkKernelTrapHot(b *testing.B) {
	k := New(DefaultConfig())
	for i := 0; i < b.N; i++ {
		k.TrapHot()
	}
}

func BenchmarkKernelTrapCold(b *testing.B) {
	k := New(DefaultConfig())
	for i := 0; i < b.N; i++ {
		k.TrapCold()
	}
}

// BenchmarkKernelPingPong measures a full synchronous round trip between
// two endpoints — the cost the paper's fast path avoids entirely.
func BenchmarkKernelPingPong(b *testing.B) {
	k := New(DefaultConfig())
	cli, _ := k.Register("cli", nil)
	srv, _ := k.Register("srv", nil)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			m, err := srv.Receive(Any, 0)
			if err != nil {
				return
			}
			if m.Type == 0xdead {
				return
			}
			_ = srv.Send(m.From, Msg{Type: m.Type})
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.SendRec(srv.ID(), Msg{Type: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_ = cli.Send(srv.ID(), Msg{Type: 0xdead})
	close(stop)
	<-done
}
