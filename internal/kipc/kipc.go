// Package kipc simulates the microkernel IPC layer underneath the
// multiserver system.
//
// The paper's thesis is that kernel IPC must be kept OFF the fast path:
// every trap pollutes caches and branch predictors, and cross-core kernel
// IPC additionally pays for message copying and inter-processor interrupts.
// To reproduce the performance *shape* of the original system on arbitrary
// hardware, this package charges explicit, configurable costs for each
// kernel entry, each message copy, and (in single-core mode) each context
// switch — calibrated to the paper's measurements: a void system call costs
// ~150 cycles hot and ~3000 cycles cold, versus ~30 cycles for a channel
// enqueue (§IV).
//
// Semantics follow MINIX 3: synchronous Send/Receive rendezvous with
// fixed-size messages, asynchronous Notify bits, and hardware interrupts
// delivered as notifications from a reserved HARDWARE endpoint. Slow-path
// uses that remain in NewtOS — channel setup, syscall entry, interrupt
// dispatch, and idle-wait (the kernel-assisted MWAIT) — run through here.
package kipc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// EndpointID names a process known to the kernel.
type EndpointID uint32

// Reserved endpoints.
const (
	// NoEndpoint is the zero, invalid endpoint.
	NoEndpoint EndpointID = 0
	// Hardware is the pseudo-endpoint interrupts arrive from.
	Hardware EndpointID = 1
	// Any matches any sender in Receive.
	Any EndpointID = 1<<32 - 1
)

// Exported errors.
var (
	ErrNoEndpoint = errors.New("kipc: no such endpoint")
	ErrClosed     = errors.New("kipc: endpoint closed")
	ErrTimeout    = errors.New("kipc: receive timed out")
	ErrWouldBlock = errors.New("kipc: no message pending")
)

// Msg is the fixed-size kernel message. Data, when non-nil, models a
// memory-grant copy: the kernel copies it between address spaces, and the
// simulation charges copy cost proportional to its length. Fast-path
// NewtOS never sets Data; the "Minix 3 mode" baseline moves whole packets
// through it.
type Msg struct {
	From EndpointID
	Type uint32
	Args [6]uint64
	Data []byte
}

// MsgNotify is the Type of notification messages synthesized from notify
// bits and interrupts.
const MsgNotify uint32 = 0xffff_fff1

// Config sets the simulated cost model.
type Config struct {
	// TrapCost is charged on every kernel call entry (hot caches).
	// The paper measures ~150 cycles; at ~2 GHz that is 75ns.
	TrapCost time.Duration
	// ColdTrapCost is the cold-cache trap cost (~3000 cycles, 1.5µs);
	// used by benchmarks via TrapCold.
	ColdTrapCost time.Duration
	// CopyCostPerKB is charged in Send per KB of Msg.Data, modelling the
	// kernel copying a memory grant between address spaces.
	CopyCostPerKB time.Duration
	// ContextSwitchCost is charged at every rendezvous delivery when
	// SingleCore is set, modelling time-shared servers that must be
	// scheduled in before they can receive.
	ContextSwitchCost time.Duration
	// SingleCore models the original MINIX 3 single-CPU configuration.
	SingleCore bool
}

// DefaultConfig returns the calibrated cost model used by the evaluation:
// 2 GHz cycles, paper §IV numbers.
func DefaultConfig() Config {
	return Config{
		TrapCost:          75 * time.Nanosecond,
		ColdTrapCost:      1500 * time.Nanosecond,
		CopyCostPerKB:     250 * time.Nanosecond, // ~4 GB/s cross-space copy
		ContextSwitchCost: 1 * time.Microsecond,
	}
}

// Kernel is one simulated machine's microkernel.
type Kernel struct {
	cfg  Config
	mu   sync.Mutex
	eps  map[EndpointID]*Endpoint
	byNm map[string]EndpointID
	next EndpointID
}

// New creates a kernel with the given cost model.
func New(cfg Config) *Kernel {
	return &Kernel{
		cfg:  cfg,
		eps:  make(map[EndpointID]*Endpoint),
		byNm: make(map[string]EndpointID),
		next: Hardware,
	}
}

// Waker is rung when a message or notification lands on an endpoint, so
// event-loop servers can integrate kernel IPC with their channel doorbell
// (paper §V-B: "we combine the kernel call ... with a non-blocking
// receive").
type Waker interface{ Ring() }

// Register creates an endpoint named name. waker may be nil. If the name
// is already registered, the previous endpoint is revoked first — a new
// incarnation of a crashed server re-registering makes the kernel treat
// the old process as dead (senders blocked on it fail with ErrClosed).
func (k *Kernel) Register(name string, waker Waker) (*Endpoint, error) {
	k.mu.Lock()
	if old, dup := k.byNm[name]; dup {
		stale := k.eps[old]
		k.mu.Unlock()
		if stale != nil {
			stale.Close()
		}
		k.mu.Lock()
	}
	defer k.mu.Unlock()
	k.next++
	ep := &Endpoint{
		k:      k,
		id:     k.next,
		name:   name,
		waker:  waker,
		wake:   make(chan struct{}, 1),
		notifs: make(map[EndpointID]bool),
	}
	k.eps[ep.id] = ep
	k.byNm[name] = ep.id
	return ep, nil
}

// Lookup resolves a name to an endpoint ID.
func (k *Kernel) Lookup(name string) (EndpointID, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	id, ok := k.byNm[name]
	return id, ok
}

// Interrupt delivers a hardware interrupt to dst as a notification from the
// Hardware pseudo-endpoint ("the kernel converts interrupts to messages to
// the drivers"). irqLine is stashed so drivers can distinguish sources.
func (k *Kernel) Interrupt(dst EndpointID) error {
	return k.notify(Hardware, dst)
}

// TrapHot charges one hot-cache kernel entry (benchmarks/calibration).
func (k *Kernel) TrapHot() { spin(k.cfg.TrapCost) }

// TrapCold charges one cold-cache kernel entry (benchmarks/calibration).
func (k *Kernel) TrapCold() { spin(k.cfg.ColdTrapCost) }

func (k *Kernel) endpoint(id EndpointID) (*Endpoint, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	ep, ok := k.eps[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoEndpoint, id)
	}
	return ep, nil
}

func (k *Kernel) notify(src, dst EndpointID) error {
	spin(k.cfg.TrapCost)
	ep, err := k.endpoint(dst)
	if err != nil {
		return err
	}
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return ErrClosed
	}
	ep.notifs[src] = true
	ep.mu.Unlock()
	ep.kick()
	return nil
}

// Endpoint is one process's kernel communication handle. At most one
// goroutine may call Receive/TryReceive on an endpoint at a time (servers
// are single-threaded); any number may Send or Notify to it.
type Endpoint struct {
	k     *Kernel
	id    EndpointID
	name  string
	waker Waker

	mu      sync.Mutex
	closed  bool
	senders []*sendReq
	notifs  map[EndpointID]bool
	wake    chan struct{}
}

type sendReq struct {
	m    Msg
	done chan error
}

// ID returns the kernel endpoint identifier.
func (e *Endpoint) ID() EndpointID { return e.id }

// Name returns the registration name.
func (e *Endpoint) Name() string { return e.name }

// kick wakes a blocked receiver and rings the integration waker.
func (e *Endpoint) kick() {
	select {
	case e.wake <- struct{}{}:
	default:
	}
	if e.waker != nil {
		e.waker.Ring()
	}
}

// Send synchronously delivers m to dst, blocking until the destination
// receives it (MINIX rendezvous). The kernel charges trap cost on entry and
// copy cost for any granted Data.
func (e *Endpoint) Send(dst EndpointID, m Msg) error {
	spin(e.k.cfg.TrapCost)
	if m.Data != nil {
		spin(time.Duration(len(m.Data)) * e.k.cfg.CopyCostPerKB / 1024)
		// The kernel copies the grant; the receiver gets its own buffer.
		cp := make([]byte, len(m.Data))
		copy(cp, m.Data)
		m.Data = cp
	}
	tgt, err := e.k.endpoint(dst)
	if err != nil {
		return err
	}
	m.From = e.id
	req := &sendReq{m: m, done: make(chan error, 1)}
	tgt.mu.Lock()
	if tgt.closed {
		tgt.mu.Unlock()
		return ErrClosed
	}
	tgt.senders = append(tgt.senders, req)
	tgt.mu.Unlock()
	tgt.kick()
	return <-req.done
}

// Notify asynchronously sets dst's notification bit for this sender. It
// never blocks (MINIX notify semantics).
func (e *Endpoint) Notify(dst EndpointID) error {
	return e.k.notify(e.id, dst)
}

// Receive blocks until a message from `from` (or Any) arrives, or timeout
// elapses (timeout <= 0 waits forever). Pending notifications are delivered
// before queued messages, as MsgNotify messages.
func (e *Endpoint) Receive(from EndpointID, timeout time.Duration) (Msg, error) {
	spin(e.k.cfg.TrapCost)
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		if m, ok, err := e.tryDequeue(from); err != nil || ok {
			return m, err
		}
		var wait time.Duration
		if !deadline.IsZero() {
			wait = time.Until(deadline)
			if wait <= 0 {
				return Msg{}, ErrTimeout
			}
		}
		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-e.wake:
				t.Stop()
			case <-t.C:
			}
		} else {
			<-e.wake
		}
	}
}

// TryReceive is the non-blocking receive used by event loops that combine
// kernel IPC with channel polling. It charges no trap cost by itself — the
// loop already paid when it entered the idle-wait kernel call.
func (e *Endpoint) TryReceive(from EndpointID) (Msg, error) {
	m, ok, err := e.tryDequeue(from)
	if err != nil {
		return Msg{}, err
	}
	if !ok {
		return Msg{}, ErrWouldBlock
	}
	return m, nil
}

func (e *Endpoint) tryDequeue(from EndpointID) (Msg, bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return Msg{}, false, ErrClosed
	}
	// Notifications first (MINIX delivers pending notify bits with priority).
	if len(e.notifs) > 0 {
		srcs := make([]EndpointID, 0, len(e.notifs))
		for src := range e.notifs {
			if from == Any || from == src {
				srcs = append(srcs, src)
			}
		}
		if len(srcs) > 0 {
			sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
			src := srcs[0]
			delete(e.notifs, src)
			return Msg{From: src, Type: MsgNotify}, true, nil
		}
	}
	for i, req := range e.senders {
		if from == Any || from == req.m.From {
			e.senders = append(e.senders[:i], e.senders[i+1:]...)
			if e.k.cfg.SingleCore {
				spin(e.k.cfg.ContextSwitchCost)
			}
			req.done <- nil
			return req.m, true, nil
		}
	}
	return Msg{}, false, nil
}

// SendRec performs the synchronous call-and-wait-for-reply pattern
// (MINIX sendrec): Send to dst, then Receive from dst.
func (e *Endpoint) SendRec(dst EndpointID, m Msg) (Msg, error) {
	if err := e.Send(dst, m); err != nil {
		return Msg{}, err
	}
	return e.Receive(dst, 0)
}

// Close tears the endpoint down. Blocked senders fail with ErrClosed; the
// name is released so a restarted incarnation can re-register.
func (e *Endpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	pend := e.senders
	e.senders = nil
	e.mu.Unlock()
	for _, req := range pend {
		req.done <- ErrClosed
	}
	select {
	case e.wake <- struct{}{}:
	default:
	}
	e.k.mu.Lock()
	delete(e.k.eps, e.id)
	delete(e.k.byNm, e.name)
	e.k.mu.Unlock()
}

// spin busy-waits for d, modelling CPU cost that does not yield the core
// (a trap, a copy, a context switch).
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	start := time.Now()
	for time.Since(start) < d {
	}
}
