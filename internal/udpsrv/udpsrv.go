// Package udpsrv is the UDP server: the channel shell around udpeng.
// UDP's per-socket state is tiny and slow-changing, making it fully
// recoverable (paper Table I) — the component the paper highlights when
// discussing the MS11-083 Windows UDP vulnerability: in NewtOS the buggy
// UDP server is simply replaced while TCP traffic keeps flowing.
package udpsrv

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"newtos/internal/liveup"
	"newtos/internal/msg"
	"newtos/internal/netpkt"
	"newtos/internal/pfeng"
	"newtos/internal/proc"
	"newtos/internal/shm"
	"newtos/internal/sockbuf"
	"newtos/internal/udpeng"
	"newtos/internal/wiring"
)

// Storage keys.
const (
	StorageKey = "udp/sockets"
	FlowsKey   = "udp/flows"
	BufKeyPfx  = "sockbuf/udp/"
)

// Config assembles a UDP server.
type Config struct {
	LocalIP netpkt.IPAddr
	// SrcFor selects the source address per destination (multi-homed).
	SrcFor  func(netpkt.IPAddr) netpkt.IPAddr
	Offload bool
	// Elastic provisions the header pool and per-socket TX buffers
	// elastically (grow under pressure, shrink after quiescence).
	Elastic bool
}

// Server is one UDP server incarnation.
type Server struct {
	cfg   Config
	ports *wiring.Ports

	eng     *udpeng.Engine
	hdrPool *shm.Pool
	ipPort  *wiring.Port
	scPort  *wiring.Port
	ipBox   *wiring.Outbox
	scBox   *wiring.Outbox
	scratch []msg.Req
}

var (
	_ proc.Service   = (*Server)(nil)
	_ proc.Handoffer = (*Server)(nil)
)

// New creates a UDP server incarnation.
func New(cfg Config, ports *wiring.Ports) *Server {
	return &Server{cfg: cfg, ports: ports}
}

// Engine exposes the engine for tests.
func (s *Server) Engine() *udpeng.Engine { return s.eng }

// Init constructs the engine; on restart the socket table is recovered
// from the storage server and the sockets recreated. When rt.Handoff
// carries a live-update payload, the incarnation instead adopts its
// predecessor's complete state — queued datagrams, parked recvs, in-flight
// sends, buffer handles — and resumes the existing wiring in place, so
// peers never observe the swap (the paper's MS11-083 scenario: replace the
// buggy UDP server under live traffic).
func (s *Server) Init(rt *proc.Runtime, restart bool) error {
	hub := s.ports.Hub()
	var payload *liveup.Payload
	if rt.Handoff != nil {
		p, ok := rt.Handoff.(*liveup.Payload)
		if !ok {
			return fmt.Errorf("udpsrv: unexpected handoff payload %T", rt.Handoff)
		}
		payload = p
		// Adopt the predecessor's header pool: in-flight datagram headers
		// (and their eventual Free on sendDone) point into it.
		s.hdrPool = p.Handles.HdrPool
	} else {
		// Elastic servers start the header pool at 1/8 of the historical
		// worst-case complement and grow on demand back to the same cap.
		hdrChunks, hdrSegs := 4096, 1
		if s.cfg.Elastic {
			hdrChunks, hdrSegs = 512, 8
		}
		hdrPool, err := hub.Space.NewPool(fmt.Sprintf("udp.hdr.%d", rt.Incarnation), 128, hdrChunks)
		if err != nil {
			return fmt.Errorf("udpsrv: %w", err)
		}
		if s.cfg.Elastic {
			hdrPool.SetElastic(shm.Elastic{MaxSegments: hdrSegs})
		}
		s.hdrPool = hdrPool
	}
	s.eng = udpeng.New(udpeng.Config{
		Space:       hub.Space,
		LocalIP:     s.cfg.LocalIP,
		SrcFor:      s.cfg.SrcFor,
		Offload:     s.cfg.Offload,
		ElasticBufs: s.cfg.Elastic,
		PublishBuf: func(sock uint32, buf *sockbuf.Buf) {
			hub.Reg.Publish(BufKeyPfx+fmt.Sprint(sock), buf)
		},
		SaveState: func(blob []byte) {
			hub.Store.Put(StorageKey, blob)
			s.persistFlows()
		},
	}, s.hdrPool)
	if restart && payload == nil {
		if blob, ok := hub.Store.Get(StorageKey); ok {
			if err := s.eng.RestoreState(blob); err != nil {
				return fmt.Errorf("udpsrv: restore: %w", err)
			}
		}
	}
	if payload != nil {
		// Rewire phase: inherit the wiring as-is — no re-publish, no
		// Attach, so port generations stay frozen and no peer runs its
		// crash path.
		s.ports.Resume(rt.Bell)
		s.ipPort = s.ports.Port("ip-udp")
		s.scPort = s.ports.Port("sc-udp")
	} else {
		s.ports.Begin(rt.Bell)
		s.ipPort = s.ports.Attach("ip-udp")
		s.scPort = s.ports.Attach("sc-udp")
	}
	s.ipBox = wiring.NewOutbox(s.ipPort)
	s.scBox = wiring.NewOutbox(s.scPort)
	s.ipBox.EnablePacing(wiring.DefaultPacing())
	s.scBox.EnablePacing(wiring.DefaultPacing())
	s.scratch = make([]msg.Req, wiring.ScratchLen)
	if payload != nil {
		if err := s.restoreHandoff(payload); err != nil {
			return err
		}
	}
	return nil
}

// restoreHandoff replays the predecessor's state-transfer stream into the
// freshly built engine and outboxes.
func (s *Server) restoreHandoff(payload *liveup.Payload) error {
	sr, err := liveup.OpenStream(payload.Stream)
	if err != nil {
		return fmt.Errorf("udpsrv: %w", err)
	}
	for sr.Next() {
		switch sr.Kind() {
		case "udp/engine":
			var blob []byte
			if err := sr.Decode(&blob); err != nil {
				return fmt.Errorf("udpsrv: %w", err)
			}
			if err := s.eng.RestoreHandoff(blob, payload.Handles.SockBufs, time.Now()); err != nil {
				return fmt.Errorf("udpsrv: %w", err)
			}
		case "outbox/ip":
			var reqs []msg.Req
			if err := sr.Decode(&reqs); err != nil {
				return fmt.Errorf("udpsrv: %w", err)
			}
			s.ipBox.Push(reqs...)
		case "outbox/sc":
			var reqs []msg.Req
			if err := sr.Decode(&reqs); err != nil {
				return fmt.Errorf("udpsrv: %w", err)
			}
			s.scBox.Push(reqs...)
		default:
			return fmt.Errorf("udpsrv: unknown handoff record %q", sr.Kind())
		}
	}
	return nil
}

// HandoffState implements proc.Handoffer: runs on the loop goroutine as
// the old incarnation's final act, after the drain rounds. Remaining engine
// output is staged, flushed as far as the channels allow, and the
// un-sendable remainder rides the stream for the successor's first Poll.
func (s *Server) HandoffState() (any, error) {
	s.ipBox.Push(s.eng.DrainToIP()...)
	s.scBox.Push(s.eng.DrainToFront()...)
	s.ipBox.Flush()
	s.scBox.Flush()
	ipLeft := s.ipBox.TakeStaged()
	scLeft := s.scBox.TakeStaged()

	blob, bufs, err := s.eng.HandoffState()
	if err != nil {
		return nil, fmt.Errorf("udpsrv: %w", err)
	}
	var w liveup.StreamWriter
	w.Add("udp/engine", blob)
	if len(ipLeft) > 0 {
		w.Add("outbox/ip", ipLeft)
	}
	if len(scLeft) > 0 {
		w.Add("outbox/sc", scLeft)
	}
	stream, err := w.Bytes()
	if err != nil {
		return nil, fmt.Errorf("udpsrv: %w", err)
	}
	return &liveup.Payload{
		Stream:  stream,
		Handles: liveup.Handles{HdrPool: s.hdrPool, SockBufs: bufs},
	}, nil
}

func (s *Server) persistFlows() {
	reqs := s.eng.Flows()
	flows := make([]pfeng.Flow, 0, len(reqs))
	for _, r := range reqs {
		flows = append(flows, pfeng.Flow{
			Proto:   netpkt.ProtoUDP,
			Src:     s.cfg.LocalIP,
			SrcPort: uint16(r.Arg[1]),
			Dst:     netpkt.IPFromU32(uint32(r.Arg[2])),
			DstPort: uint16(r.Arg[3]),
		})
	}
	var buf bytes.Buffer
	if gob.NewEncoder(&buf).Encode(flows) == nil {
		s.ports.Hub().Store.Put(FlowsKey, buf.Bytes())
	}
}

// Poll drains both edges in batches, runs the whole intake through the
// engine, and flushes each outbox once per iteration.
func (s *Server) Poll(now time.Time) bool {
	worked := false

	ipDup, changed := s.ipPort.Take()
	if changed && ipDup.Valid() {
		s.ipBox.Drop()
		s.eng.OnIPRestart()
		worked = true
	}
	if ipDup.Valid() {
		if wiring.Drain(ipDup.In, s.scratch, wiring.RecvBudget, func(b []msg.Req) {
			for _, r := range b {
				s.eng.FromIP(r)
			}
		}) {
			worked = true
		}
	}

	scDup, scChanged := s.scPort.Take()
	if scChanged {
		s.scBox.Drop()
	}
	if scDup.Valid() {
		if wiring.Drain(scDup.In, s.scratch, wiring.RecvBudget, func(b []msg.Req) {
			for _, r := range b {
				s.eng.FromFront(r)
			}
		}) {
			worked = true
		}
	}

	// Elastic pools: one policy step per loop iteration (header pool and
	// idle socket buffers).
	s.eng.Tick()

	s.ipBox.Push(s.eng.DrainToIP()...)
	s.scBox.Push(s.eng.DrainToFront()...)
	idle := !worked
	if s.ipBox.FlushPaced(now, idle) {
		worked = true
	}
	if s.scBox.FlushPaced(now, idle) {
		worked = true
	}
	return worked
}

// OutboxDropped sums the requests UDP's edges shed across peer
// reincarnations (wiring.DropReporter).
func (s *Server) OutboxDropped() uint64 { return wiring.SumDropped(s.ipBox, s.scBox) }

// Deadline: UDP has no timers.
func (s *Server) Deadline(now time.Time) time.Time { return time.Time{} }

// Stop is a no-op.
func (s *Server) Stop() {}

var _ = msg.Req{}
