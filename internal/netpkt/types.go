// Package netpkt implements the wire formats of the stack — Ethernet II,
// ARP, IPv4, ICMPv4, UDP and TCP — together with Internet checksums
// (including the pseudo-header and partial forms used by checksum
// offloading) and the scatter/gather packet chains that ride through the
// fast-path channels as rich-pointer arrays (paper §V-C "Zero Copy").
package netpkt

import (
	"fmt"
	"strconv"
	"strings"

	"newtos/internal/shm"
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Broadcast is the all-ones Ethernet address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// IPAddr is an IPv4 address.
type IPAddr [4]byte

func (a IPAddr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// U32 returns the address as a big-endian uint32 (for routing math and for
// packing into message args).
func (a IPAddr) U32() uint32 {
	return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
}

// IPFromU32 is the inverse of U32.
func IPFromU32(v uint32) IPAddr {
	return IPAddr{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// ParseIP parses dotted-quad notation.
func ParseIP(s string) (IPAddr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return IPAddr{}, fmt.Errorf("netpkt: bad IPv4 %q", s)
	}
	var a IPAddr
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return IPAddr{}, fmt.Errorf("netpkt: bad IPv4 %q", s)
		}
		a[i] = byte(v)
	}
	return a, nil
}

// MustIP is ParseIP for constants; panics on error.
func MustIP(s string) IPAddr {
	a, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return a
}

// InSubnet reports whether a and b share the /maskBits prefix.
func (a IPAddr) InSubnet(b IPAddr, maskBits int) bool {
	if maskBits <= 0 {
		return true
	}
	if maskBits > 32 {
		maskBits = 32
	}
	mask := uint32(0xffffffff) << (32 - uint(maskBits))
	return a.U32()&mask == b.U32()&mask
}

// IP protocol numbers.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// Chunk is one piece of a scattered packet: a rich pointer for provenance
// (who owns/frees it) plus the resolved byte view.
type Chunk struct {
	Ptr  shm.RichPtr
	Data []byte
}

// Packet is a scatter/gather chain of chunks — the "long chains of
// pointers" the stack passes zero-copy from producer to consumers.
type Packet struct {
	Chunks []Chunk
}

// Len returns the total byte length of the chain.
func (p *Packet) Len() int {
	n := 0
	for _, c := range p.Chunks {
		n += len(c.Data)
	}
	return n
}

// Ptrs returns the rich-pointer chain for embedding into a channel request.
func (p *Packet) Ptrs() []shm.RichPtr {
	out := make([]shm.RichPtr, len(p.Chunks))
	for i, c := range p.Chunks {
		out[i] = c.Ptr
	}
	return out
}

// CopyTo linearizes the chain into dst, returning bytes written. This is
// what a NIC's gather DMA engine does when it serializes the frame.
func (p *Packet) CopyTo(dst []byte) int {
	n := 0
	for _, c := range p.Chunks {
		n += copy(dst[n:], c.Data)
		if n == len(dst) {
			break
		}
	}
	return n
}

// Bytes linearizes the chain into a fresh slice.
func (p *Packet) Bytes() []byte {
	out := make([]byte, p.Len())
	p.CopyTo(out)
	return out
}

// Prepend adds a chunk at the front (each protocol prepends its header).
func (p *Packet) Prepend(c Chunk) {
	p.Chunks = append([]Chunk{c}, p.Chunks...)
}

// Append adds a chunk at the back.
func (p *Packet) Append(c Chunk) {
	p.Chunks = append(p.Chunks, c)
}

// Resolve builds a Packet from a rich-pointer chain by resolving each
// pointer to its (read-only) view in space.
func Resolve(space *shm.Space, ptrs []shm.RichPtr) (Packet, error) {
	p := Packet{Chunks: make([]Chunk, 0, len(ptrs))}
	for _, ptr := range ptrs {
		v, err := space.View(ptr)
		if err != nil {
			return Packet{}, fmt.Errorf("resolve chain: %w", err)
		}
		p.Chunks = append(p.Chunks, Chunk{Ptr: ptr, Data: v})
	}
	return p, nil
}
