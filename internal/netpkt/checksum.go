package netpkt

import "encoding/binary"

// Sum16 adds the 16-bit one's-complement sum of b to an accumulated partial
// sum. Carries are deferred; fold with Fold16 when done. Odd-length input is
// padded with a zero byte, per RFC 1071.
func Sum16(b []byte, acc uint32) uint32 {
	n := len(b)
	for i := 0; i+1 < n; i += 2 {
		acc += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if n%2 == 1 {
		acc += uint32(b[n-1]) << 8
	}
	return acc
}

// Fold16 reduces an accumulated sum to the final one's-complement checksum.
func Fold16(acc uint32) uint16 {
	for acc>>16 != 0 {
		acc = (acc & 0xffff) + acc>>16
	}
	return ^uint16(acc)
}

// Checksum computes the Internet checksum of b.
func Checksum(b []byte) uint16 {
	return Fold16(Sum16(b, 0))
}

// PseudoSum accumulates the IPv4 pseudo-header (src, dst, zero+proto,
// length) used by TCP and UDP checksums. The partial (un-folded) form is
// what checksum offloading hands to the NIC: software leaves the pseudo-sum
// in the checksum field and the device finishes over the payload.
func PseudoSum(src, dst IPAddr, proto uint8, length uint16) uint32 {
	var ph [12]byte
	copy(ph[0:4], src[:])
	copy(ph[4:8], dst[:])
	ph[9] = proto
	binary.BigEndian.PutUint16(ph[10:], length)
	return Sum16(ph[:], 0)
}

// TransportChecksum computes the full TCP/UDP checksum over the pseudo
// header and the given segment bytes.
func TransportChecksum(src, dst IPAddr, proto uint8, segment []byte) uint16 {
	return Fold16(Sum16(segment, PseudoSum(src, dst, proto, uint16(len(segment)))))
}

// VerifyTransportChecksum reports whether a received TCP/UDP segment's
// embedded checksum is valid.
func VerifyTransportChecksum(src, dst IPAddr, proto uint8, segment []byte) bool {
	return Fold16(Sum16(segment, PseudoSum(src, dst, proto, uint16(len(segment))))) == 0
}
