package netpkt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// EtherType values carried in the Ethernet header.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
)

// EthHeaderLen is the length of an Ethernet II header.
const EthHeaderLen = 14

// ErrTruncated means a buffer is too short for the header being parsed.
var ErrTruncated = errors.New("netpkt: truncated packet")

// EthHeader is an Ethernet II header.
type EthHeader struct {
	Dst  MAC
	Src  MAC
	Type uint16
}

// Marshal writes the header into b, which must be >= EthHeaderLen.
func (h *EthHeader) Marshal(b []byte) {
	copy(b[0:6], h.Dst[:])
	copy(b[6:12], h.Src[:])
	binary.BigEndian.PutUint16(b[12:14], h.Type)
}

// ParseEth reads an Ethernet II header from b.
func ParseEth(b []byte) (EthHeader, error) {
	if len(b) < EthHeaderLen {
		return EthHeader{}, fmt.Errorf("%w: eth header needs %d bytes, have %d", ErrTruncated, EthHeaderLen, len(b))
	}
	var h EthHeader
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.Type = binary.BigEndian.Uint16(b[12:14])
	return h, nil
}

// ARP operation codes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARPLen is the length of an IPv4-over-Ethernet ARP packet.
const ARPLen = 28

// ARPPacket is an IPv4-over-Ethernet ARP payload.
type ARPPacket struct {
	Op        uint16
	SenderMAC MAC
	SenderIP  IPAddr
	TargetMAC MAC
	TargetIP  IPAddr
}

// Marshal writes the ARP packet into b, which must be >= ARPLen.
func (a *ARPPacket) Marshal(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], 1)      // hardware: Ethernet
	binary.BigEndian.PutUint16(b[2:4], 0x0800) // protocol: IPv4
	b[4] = 6                                   // hw addr len
	b[5] = 4                                   // proto addr len
	binary.BigEndian.PutUint16(b[6:8], a.Op)
	copy(b[8:14], a.SenderMAC[:])
	copy(b[14:18], a.SenderIP[:])
	copy(b[18:24], a.TargetMAC[:])
	copy(b[24:28], a.TargetIP[:])
}

// ParseARP reads an ARP packet from b.
func ParseARP(b []byte) (ARPPacket, error) {
	if len(b) < ARPLen {
		return ARPPacket{}, fmt.Errorf("%w: arp needs %d bytes, have %d", ErrTruncated, ARPLen, len(b))
	}
	if binary.BigEndian.Uint16(b[0:2]) != 1 || binary.BigEndian.Uint16(b[2:4]) != 0x0800 ||
		b[4] != 6 || b[5] != 4 {
		return ARPPacket{}, errors.New("netpkt: unsupported arp hardware/protocol")
	}
	var a ARPPacket
	a.Op = binary.BigEndian.Uint16(b[6:8])
	copy(a.SenderMAC[:], b[8:14])
	copy(a.SenderIP[:], b[14:18])
	copy(a.TargetMAC[:], b[18:24])
	copy(a.TargetIP[:], b[24:28])
	return a, nil
}
