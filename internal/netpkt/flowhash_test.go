package netpkt

import (
	"math/rand"
	"testing"
)

func TestTCPShardOfDeterministic(t *testing.T) {
	ip := MustIP("10.0.0.2")
	for shards := 1; shards <= 8; shards++ {
		want := TCPShardOf(7000, ip, 45001, shards)
		for i := 0; i < 100; i++ {
			if got := TCPShardOf(7000, ip, 45001, shards); got != want {
				t.Fatalf("shards=%d: same tuple hashed to %d then %d", shards, want, got)
			}
		}
		if want < 0 || want >= shards {
			t.Fatalf("shards=%d: shard %d out of range", shards, want)
		}
	}
	if TCPShardOf(7000, ip, 45001, 0) != 0 || TCPShardOf(7000, ip, 45001, 1) != 0 {
		t.Fatal("unsharded deployments must always map to shard 0")
	}
}

// TestTCPShardOfSymmetry pins the routing contract: IP hashes an inbound
// segment as (dstPort, srcIP, srcPort) and must land on the shard whose
// engine keyed the connection as (localPort, remoteIP, remotePort) — the
// same triple, so the same function call. A regression here would strand
// established connections on the wrong shard.
func TestTCPShardOfSymmetry(t *testing.T) {
	remote := MustIP("10.0.1.7")
	for shards := 2; shards <= 4; shards++ {
		for port := uint16(45000); port < 45100; port++ {
			engineView := TCPShardOf(port, remote, 9000, shards)
			ipView := TCPShardOf(port, remote, 9000, shards) // dstPort, srcIP, srcPort
			if engineView != ipView {
				t.Fatalf("views disagree for port %d", port)
			}
		}
	}
}

func TestTCPShardOfSpread(t *testing.T) {
	const shards, n = 4, 40000
	counts := make([]int, shards)
	rnd := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		lp := uint16(rnd.Intn(1 << 16))
		rp := uint16(rnd.Intn(1 << 16))
		ip := IPFromU32(rnd.Uint32())
		counts[TCPShardOf(lp, ip, rp, shards)]++
	}
	for s, c := range counts {
		frac := float64(c) / n
		// Perfect balance is 0.25; require every shard within [0.2, 0.3].
		if frac < 0.20 || frac > 0.30 {
			t.Fatalf("shard %d received %.3f of random flows; distribution skewed: %v", s, frac, counts)
		}
	}
}

// TestTCPShardOfEphemeralRange mirrors tcpeng's autobind: within the
// ephemeral port range every shard must have plenty of ports that hash
// home for any fixed remote, or connect() would exhaust the range.
func TestTCPShardOfEphemeralRange(t *testing.T) {
	remote := MustIP("10.0.0.2")
	for _, shards := range []int{2, 4, 8} {
		counts := make([]int, shards)
		for port := uint16(45000); port < 65500; port++ {
			counts[TCPShardOf(port, remote, 9000, shards)]++
		}
		for s, c := range counts {
			if c < 1024 {
				t.Fatalf("shards=%d: only %d ephemeral ports hash to shard %d", shards, c, s)
			}
		}
	}
}
