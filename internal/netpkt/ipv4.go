package netpkt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// IPv4HeaderLen is the length of an option-less IPv4 header, the only form
// the stack emits (lwIP likewise does not generate options).
const IPv4HeaderLen = 20

// DefaultTTL is the initial time-to-live for generated packets.
const DefaultTTL = 64

// Exported parse errors, matchable with errors.Is.
var (
	ErrBadVersion  = errors.New("netpkt: not IPv4")
	ErrBadChecksum = errors.New("netpkt: bad checksum")
	ErrBadLength   = errors.New("netpkt: inconsistent length fields")
)

// IPv4Header is an IPv4 header. Options are accepted on parse (skipped via
// IHL) but never generated.
type IPv4Header struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // upper 3 bits of the fragment word
	FragOff  uint16
	TTL      uint8
	Proto    uint8
	Checksum uint16
	Src      IPAddr
	Dst      IPAddr
	// HeaderLen is the parsed header length in bytes (>= 20 with options).
	HeaderLen int
}

// IPv4 flag bits.
const (
	IPFlagDF = 0x2 // don't fragment
	IPFlagMF = 0x1 // more fragments
)

// Marshal writes an option-less header into b (>= IPv4HeaderLen). If
// fillChecksum is false the checksum field is left zero for the device to
// fill (checksum offload).
func (h *IPv4Header) Marshal(b []byte, fillChecksum bool) {
	b[0] = 0x45 // version 4, IHL 5
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(h.Flags)<<13|h.FragOff&0x1fff)
	b[8] = h.TTL
	b[9] = h.Proto
	b[10], b[11] = 0, 0
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	if fillChecksum {
		binary.BigEndian.PutUint16(b[10:12], Checksum(b[:IPv4HeaderLen]))
	}
}

// ParseIPv4 reads and validates an IPv4 header from b. When verifyChecksum
// is false (the device already verified it — RX checksum offload), the
// checksum field is not recomputed.
func ParseIPv4(b []byte, verifyChecksum bool) (IPv4Header, error) {
	if len(b) < IPv4HeaderLen {
		return IPv4Header{}, fmt.Errorf("%w: ipv4 header needs %d bytes, have %d", ErrTruncated, IPv4HeaderLen, len(b))
	}
	if b[0]>>4 != 4 {
		return IPv4Header{}, fmt.Errorf("%w: version %d", ErrBadVersion, b[0]>>4)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || ihl > len(b) {
		return IPv4Header{}, fmt.Errorf("%w: ihl %d", ErrBadLength, ihl)
	}
	var h IPv4Header
	h.HeaderLen = ihl
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	if int(h.TotalLen) < ihl {
		return IPv4Header{}, fmt.Errorf("%w: total %d < ihl %d", ErrBadLength, h.TotalLen, ihl)
	}
	h.ID = binary.BigEndian.Uint16(b[4:6])
	frag := binary.BigEndian.Uint16(b[6:8])
	h.Flags = uint8(frag >> 13)
	h.FragOff = frag & 0x1fff
	h.TTL = b[8]
	h.Proto = b[9]
	h.Checksum = binary.BigEndian.Uint16(b[10:12])
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	if verifyChecksum && Checksum(b[:ihl]) != 0 {
		return IPv4Header{}, ErrBadChecksum
	}
	return h, nil
}

// ICMP types used by the stack.
const (
	ICMPEchoReply   uint8 = 0
	ICMPEchoRequest uint8 = 8
	ICMPDstUnreach  uint8 = 3
)

// ICMPHeaderLen is the echo header length (type, code, csum, id, seq).
const ICMPHeaderLen = 8

// ICMPEcho is an ICMP echo request/reply header.
type ICMPEcho struct {
	Type uint8
	Code uint8
	ID   uint16
	Seq  uint16
}

// Marshal writes the echo header plus payload checksum into b, which must
// hold ICMPHeaderLen + len(payload) bytes (payload must already be at
// b[8:]).
func (ic *ICMPEcho) Marshal(b []byte, payloadLen int) {
	b[0] = ic.Type
	b[1] = ic.Code
	b[2], b[3] = 0, 0
	binary.BigEndian.PutUint16(b[4:6], ic.ID)
	binary.BigEndian.PutUint16(b[6:8], ic.Seq)
	binary.BigEndian.PutUint16(b[2:4], Checksum(b[:ICMPHeaderLen+payloadLen]))
}

// ParseICMPEcho reads an ICMP echo header from b and verifies the checksum
// over the whole ICMP message.
func ParseICMPEcho(b []byte) (ICMPEcho, error) {
	if len(b) < ICMPHeaderLen {
		return ICMPEcho{}, fmt.Errorf("%w: icmp needs %d bytes, have %d", ErrTruncated, ICMPHeaderLen, len(b))
	}
	if Checksum(b) != 0 {
		return ICMPEcho{}, ErrBadChecksum
	}
	return ICMPEcho{
		Type: b[0],
		Code: b[1],
		ID:   binary.BigEndian.Uint16(b[4:6]),
		Seq:  binary.BigEndian.Uint16(b[6:8]),
	}, nil
}
