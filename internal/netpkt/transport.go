package netpkt

import (
	"encoding/binary"
	"fmt"
)

// UDPHeaderLen is the UDP header length.
const UDPHeaderLen = 8

// UDPHeader is a UDP header.
type UDPHeader struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16 // header + payload
	Checksum uint16
}

// Marshal writes the header into b (>= UDPHeaderLen), leaving the checksum
// field as given (zero when offloaded or unused).
func (h *UDPHeader) Marshal(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint16(b[4:6], h.Length)
	binary.BigEndian.PutUint16(b[6:8], h.Checksum)
}

// ParseUDP reads a UDP header from b.
func ParseUDP(b []byte) (UDPHeader, error) {
	if len(b) < UDPHeaderLen {
		return UDPHeader{}, fmt.Errorf("%w: udp needs %d bytes, have %d", ErrTruncated, UDPHeaderLen, len(b))
	}
	return UDPHeader{
		SrcPort:  binary.BigEndian.Uint16(b[0:2]),
		DstPort:  binary.BigEndian.Uint16(b[2:4]),
		Length:   binary.BigEndian.Uint16(b[4:6]),
		Checksum: binary.BigEndian.Uint16(b[6:8]),
	}, nil
}

// TCP flag bits.
const (
	TCPFin uint8 = 1 << 0
	TCPSyn uint8 = 1 << 1
	TCPRst uint8 = 1 << 2
	TCPPsh uint8 = 1 << 3
	TCPAck uint8 = 1 << 4
)

// TCPHeaderLen is the option-less TCP header length.
const TCPHeaderLen = 20

// TCPHeader is a TCP header. MSS is the only option generated (lwIP-like);
// unknown options are skipped on parse.
type TCPHeader struct {
	SrcPort  uint16
	DstPort  uint16
	Seq      uint32
	Ack      uint32
	Flags    uint8
	Window   uint16
	Checksum uint16
	// MSS is the maximum-segment-size option; zero means absent.
	MSS uint16
	// DataOff is the parsed header length in bytes.
	DataOff int
}

// MarshalLen returns the marshalled header length for this header.
func (h *TCPHeader) MarshalLen() int {
	if h.MSS != 0 {
		return TCPHeaderLen + 4
	}
	return TCPHeaderLen
}

// Marshal writes the header into b (>= MarshalLen()), leaving Checksum as
// given (the pseudo-sum when offloaded).
func (h *TCPHeader) Marshal(b []byte) {
	n := h.MarshalLen()
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint32(b[4:8], h.Seq)
	binary.BigEndian.PutUint32(b[8:12], h.Ack)
	b[12] = uint8(n/4) << 4
	b[13] = h.Flags
	binary.BigEndian.PutUint16(b[14:16], h.Window)
	binary.BigEndian.PutUint16(b[16:18], h.Checksum)
	b[18], b[19] = 0, 0 // urgent pointer unused
	if h.MSS != 0 {
		b[20] = 2 // kind: MSS
		b[21] = 4 // length
		binary.BigEndian.PutUint16(b[22:24], h.MSS)
	}
}

// ParseTCP reads a TCP header (and its MSS option if present) from b.
func ParseTCP(b []byte) (TCPHeader, error) {
	if len(b) < TCPHeaderLen {
		return TCPHeader{}, fmt.Errorf("%w: tcp needs %d bytes, have %d", ErrTruncated, TCPHeaderLen, len(b))
	}
	off := int(b[12]>>4) * 4
	if off < TCPHeaderLen || off > len(b) {
		return TCPHeader{}, fmt.Errorf("%w: tcp data offset %d", ErrBadLength, off)
	}
	h := TCPHeader{
		SrcPort:  binary.BigEndian.Uint16(b[0:2]),
		DstPort:  binary.BigEndian.Uint16(b[2:4]),
		Seq:      binary.BigEndian.Uint32(b[4:8]),
		Ack:      binary.BigEndian.Uint32(b[8:12]),
		Flags:    b[13] & 0x1f,
		Window:   binary.BigEndian.Uint16(b[14:16]),
		Checksum: binary.BigEndian.Uint16(b[16:18]),
		DataOff:  off,
	}
	// Walk options for MSS.
	opts := b[TCPHeaderLen:off]
	for len(opts) > 0 {
		switch opts[0] {
		case 0: // end of options
			opts = nil
		case 1: // NOP
			opts = opts[1:]
		default:
			if len(opts) < 2 || int(opts[1]) < 2 || int(opts[1]) > len(opts) {
				return TCPHeader{}, fmt.Errorf("%w: malformed tcp option", ErrBadLength)
			}
			if opts[0] == 2 && opts[1] == 4 {
				h.MSS = binary.BigEndian.Uint16(opts[2:4])
			}
			opts = opts[opts[1]:]
		}
	}
	return h, nil
}

// SeqLT reports whether sequence number a is before b, in modular
// 32-bit sequence space (RFC 793 comparison).
func SeqLT(a, b uint32) bool { return int32(a-b) < 0 }

// SeqLEQ reports a <= b in sequence space.
func SeqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// SeqBetween reports low <= x < high in sequence space.
func SeqBetween(x, low, high uint32) bool {
	return SeqLEQ(low, x) && SeqLT(x, high)
}
