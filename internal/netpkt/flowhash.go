package netpkt

// TCP flow-hash sharding contract (docs/ARCHITECTURE.md "Sharded TCP").
//
// The TCP engine is deployed as N independent shards; every TCP segment and
// every socket operation must land on the shard that owns its connection.
// Ownership is a pure function of the connection 4-tuple as seen from the
// local host: (local port, remote IP, remote port). The local IP is
// deliberately excluded — a multi-homed host keeps a connection on one shard
// even when policy routing moves it between interfaces, and the engine's
// connection table is keyed the same way.
//
// Everyone who routes must use these functions:
//
//   - ipeng hashes inbound segments with (dstPort, srcIP, srcPort) — the
//     packet's view of (localPort, remoteIP, remotePort);
//   - tcpeng's autobind picks an ephemeral port whose hash lands on its own
//     shard, so return traffic for actively-opened connections comes home;
//   - the SYSCALL server routes a bound connect() by the same hash, so
//     explicitly-bound clients also land where their inbound traffic will;
//   - SYNs for listening ports are routed by the same hash (listeners are
//     replicated across shards), so each accepted connection lives wholly on
//     the shard its SYN hashed to.

// TCPFlowHash hashes a connection 4-tuple from the local host's point of
// view (FNV-1a over localPort, remoteIP, remotePort). It is the single
// hash function of the sharding contract above.
func TCPFlowHash(localPort uint16, remoteIP IPAddr, remotePort uint16) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	mix := func(b byte) {
		h ^= uint32(b)
		h *= prime32
	}
	mix(byte(localPort >> 8))
	mix(byte(localPort))
	for _, b := range remoteIP {
		mix(b)
	}
	mix(byte(remotePort >> 8))
	mix(byte(remotePort))
	return h
}

// TCPShardOf maps a connection 4-tuple to its owning shard in [0, shards).
// Every router (ipeng, tcpeng, syscallsrv) must agree with this mapping;
// shards <= 1 always yields 0, so unsharded stacks pay nothing.
func TCPShardOf(localPort uint16, remoteIP IPAddr, remotePort uint16, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(TCPFlowHash(localPort, remoteIP, remotePort) % uint32(shards))
}
