package netpkt

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"newtos/internal/shm"
)

func TestParseIPString(t *testing.T) {
	a, err := ParseIP("192.168.1.10")
	if err != nil {
		t.Fatal(err)
	}
	if a != (IPAddr{192, 168, 1, 10}) {
		t.Fatalf("a = %v", a)
	}
	if a.String() != "192.168.1.10" {
		t.Fatalf("String = %q", a.String())
	}
	for _, bad := range []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "-1.0.0.0"} {
		if _, err := ParseIP(bad); err == nil {
			t.Errorf("ParseIP(%q) succeeded", bad)
		}
	}
}

func TestIPU32RoundTrip(t *testing.T) {
	prop := func(v uint32) bool { return IPFromU32(v).U32() == v }
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInSubnet(t *testing.T) {
	a := MustIP("10.0.1.5")
	tests := []struct {
		b    string
		bits int
		want bool
	}{
		{"10.0.1.200", 24, true},
		{"10.0.2.5", 24, false},
		{"10.0.2.5", 16, true},
		{"11.0.1.5", 8, false},
		{"99.99.99.99", 0, true},
		{"10.0.1.5", 32, true},
		{"10.0.1.4", 32, false},
	}
	for _, tt := range tests {
		if got := a.InSubnet(MustIP(tt.b), tt.bits); got != tt.want {
			t.Errorf("InSubnet(%s,/%d) = %v, want %v", tt.b, tt.bits, got, tt.want)
		}
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2, csum ^0xddf2.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != ^uint16(0xddf2) {
		t.Fatalf("checksum = %#x", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	if Checksum([]byte{0xab}) != ^uint16(0xab00) {
		t.Fatal("odd-length padding wrong")
	}
}

// Property: a marshalled IPv4 header with its checksum filled verifies to
// zero, and appending the checksum-validating parse recovers all fields.
func TestQuickIPv4RoundTrip(t *testing.T) {
	prop := func(tos uint8, id uint16, ttl uint8, proto uint8, src, dst uint32, payloadLen uint16) bool {
		h := IPv4Header{
			TOS: tos, TotalLen: IPv4HeaderLen + payloadLen%1480, ID: id,
			Flags: IPFlagDF, TTL: ttl, Proto: proto,
			Src: IPFromU32(src), Dst: IPFromU32(dst),
		}
		var b [IPv4HeaderLen]byte
		h.Marshal(b[:], true)
		got, err := ParseIPv4(b[:], true)
		if err != nil {
			return false
		}
		return got.TOS == h.TOS && got.TotalLen == h.TotalLen && got.ID == h.ID &&
			got.TTL == h.TTL && got.Proto == h.Proto && got.Src == h.Src && got.Dst == h.Dst &&
			got.HeaderLen == IPv4HeaderLen
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIPv4RejectsCorruption(t *testing.T) {
	h := IPv4Header{TotalLen: 40, TTL: 64, Proto: ProtoTCP, Src: MustIP("1.2.3.4"), Dst: MustIP("5.6.7.8")}
	var b [IPv4HeaderLen]byte
	h.Marshal(b[:], true)
	b[8] ^= 0xff // flip TTL
	if _, err := ParseIPv4(b[:], true); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("corrupted parse: %v", err)
	}
	b[0] = 0x65 // version 6
	if _, err := ParseIPv4(b[:], true); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version parse: %v", err)
	}
	if _, err := ParseIPv4(b[:5], true); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short parse: %v", err)
	}
}

func TestIPv4OffloadLeavesChecksumZero(t *testing.T) {
	h := IPv4Header{TotalLen: 20, TTL: 1, Proto: ProtoUDP}
	var b [IPv4HeaderLen]byte
	h.Marshal(b[:], false)
	if b[10] != 0 || b[11] != 0 {
		t.Fatal("offload marshal filled checksum")
	}
	// Device-side fill:
	got, err := ParseIPv4(b[:], false)
	if err != nil || got.Checksum != 0 {
		t.Fatalf("parse without verify: %+v %v", got, err)
	}
}

func TestEthRoundTrip(t *testing.T) {
	h := EthHeader{Dst: Broadcast, Src: MAC{1, 2, 3, 4, 5, 6}, Type: EtherTypeARP}
	var b [EthHeaderLen]byte
	h.Marshal(b[:])
	got, err := ParseEth(b[:])
	if err != nil || got != h {
		t.Fatalf("eth round trip: %+v %v", got, err)
	}
	if _, err := ParseEth(b[:10]); !errors.Is(err, ErrTruncated) {
		t.Fatal("short eth accepted")
	}
	if (MAC{1, 2, 3, 4, 5, 6}).String() != "01:02:03:04:05:06" {
		t.Fatal("MAC string format")
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := ARPPacket{
		Op: ARPRequest, SenderMAC: MAC{1, 1, 1, 1, 1, 1}, SenderIP: MustIP("10.0.0.1"),
		TargetMAC: MAC{}, TargetIP: MustIP("10.0.0.2"),
	}
	var b [ARPLen]byte
	a.Marshal(b[:])
	got, err := ParseARP(b[:])
	if err != nil || got != a {
		t.Fatalf("arp round trip: %+v %v", got, err)
	}
	b[4] = 8 // bad hw len
	if _, err := ParseARP(b[:]); err == nil {
		t.Fatal("bad arp accepted")
	}
}

func TestICMPEchoRoundTrip(t *testing.T) {
	payload := []byte("ping payload")
	b := make([]byte, ICMPHeaderLen+len(payload))
	copy(b[ICMPHeaderLen:], payload)
	e := ICMPEcho{Type: ICMPEchoRequest, ID: 0x1234, Seq: 7}
	e.Marshal(b, len(payload))
	got, err := ParseICMPEcho(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != e.Type || got.ID != e.ID || got.Seq != e.Seq {
		t.Fatalf("icmp = %+v", got)
	}
	b[ICMPHeaderLen] ^= 0xff
	if _, err := ParseICMPEcho(b); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("corrupt icmp: %v", err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	h := UDPHeader{SrcPort: 5353, DstPort: 53, Length: 30, Checksum: 0xbeef}
	var b [UDPHeaderLen]byte
	h.Marshal(b[:])
	got, err := ParseUDP(b[:])
	if err != nil || got != h {
		t.Fatalf("udp round trip: %+v %v", got, err)
	}
}

func TestTCPRoundTripWithMSS(t *testing.T) {
	h := TCPHeader{
		SrcPort: 43210, DstPort: 80, Seq: 0xdeadbeef, Ack: 0x01020304,
		Flags: TCPSyn | TCPAck, Window: 65535, MSS: 1460,
	}
	b := make([]byte, h.MarshalLen())
	if len(b) != 24 {
		t.Fatalf("marshal len = %d", len(b))
	}
	h.Marshal(b)
	got, err := ParseTCP(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != h.SrcPort || got.Seq != h.Seq || got.Ack != h.Ack ||
		got.Flags != h.Flags || got.Window != h.Window || got.MSS != 1460 || got.DataOff != 24 {
		t.Fatalf("tcp = %+v", got)
	}
}

func TestTCPNoOptions(t *testing.T) {
	h := TCPHeader{SrcPort: 1, DstPort: 2, Flags: TCPAck}
	b := make([]byte, h.MarshalLen())
	h.Marshal(b)
	got, err := ParseTCP(b)
	if err != nil || got.MSS != 0 || got.DataOff != TCPHeaderLen {
		t.Fatalf("tcp = %+v, %v", got, err)
	}
}

func TestTCPSkipsUnknownOptions(t *testing.T) {
	// Header with NOP, NOP, unknown kind 8 (timestamps, len 10), MSS.
	b := make([]byte, 36)
	h := TCPHeader{SrcPort: 1, DstPort: 2, Flags: TCPSyn}
	h.Marshal(b[:20])
	b[12] = uint8(36/4) << 4
	opts := b[20:]
	opts[0], opts[1] = 1, 1 // NOP NOP
	opts[2], opts[3] = 8, 10
	// bytes 4..11 timestamp junk
	opts[12], opts[13] = 2, 4
	opts[14], opts[15] = 0x05, 0xb4 // MSS 1460
	got, err := ParseTCP(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.MSS != 1460 {
		t.Fatalf("MSS = %d", got.MSS)
	}
}

func TestTCPMalformedOption(t *testing.T) {
	b := make([]byte, 24)
	h := TCPHeader{Flags: TCPSyn}
	h.Marshal(b[:20])
	b[12] = uint8(24/4) << 4
	b[20], b[21] = 5, 99 // option longer than remaining space
	if _, err := ParseTCP(b); err == nil {
		t.Fatal("malformed option accepted")
	}
}

func TestSeqArithmetic(t *testing.T) {
	if !SeqLT(1, 2) || SeqLT(2, 1) {
		t.Fatal("basic SeqLT")
	}
	// Wraparound: 0xffffffff is before 1.
	if !SeqLT(0xffffffff, 1) {
		t.Fatal("wraparound SeqLT")
	}
	if !SeqBetween(0, 0xfffffff0, 0x10) {
		t.Fatal("wraparound SeqBetween")
	}
	if SeqBetween(0x20, 0xfffffff0, 0x10) {
		t.Fatal("SeqBetween false positive")
	}
	if !SeqLEQ(5, 5) {
		t.Fatal("SeqLEQ equality")
	}
}

// Property: sequence comparison is a strict total order on windows < 2^31.
func TestQuickSeqOrder(t *testing.T) {
	prop := func(base uint32, d1, d2 uint16) bool {
		a, b := base+uint32(d1), base+uint32(d2)
		switch {
		case d1 < d2:
			return SeqLT(a, b)
		case d1 > d2:
			return SeqLT(b, a)
		default:
			return !SeqLT(a, b) && !SeqLT(b, a)
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestTransportChecksum(t *testing.T) {
	src, dst := MustIP("10.0.0.1"), MustIP("10.0.0.2")
	seg := make([]byte, UDPHeaderLen+5)
	h := UDPHeader{SrcPort: 1000, DstPort: 2000, Length: uint16(len(seg))}
	h.Marshal(seg)
	copy(seg[UDPHeaderLen:], "hello")
	csum := TransportChecksum(src, dst, ProtoUDP, seg)
	h.Checksum = csum
	h.Marshal(seg)
	copy(seg[UDPHeaderLen:], "hello")
	if !VerifyTransportChecksum(src, dst, ProtoUDP, seg) {
		t.Fatal("verify failed")
	}
	seg[9] ^= 1
	if VerifyTransportChecksum(src, dst, ProtoUDP, seg) {
		t.Fatal("corruption not detected")
	}
}

// Property: Sum16 is associative across arbitrary splits — the foundation
// of partial checksums for offload (device continues where software left
// off).
func TestQuickChecksumSplit(t *testing.T) {
	prop := func(data []byte, splitAt uint8) bool {
		if len(data)%2 != 0 {
			data = append(data, 0)
		}
		cut := int(splitAt) % (len(data) + 1)
		if cut%2 == 1 {
			cut--
		}
		whole := Fold16(Sum16(data, 0))
		split := Fold16(Sum16(data[cut:], Sum16(data[:cut], 0)))
		return whole == split
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPacketChain(t *testing.T) {
	space := shm.NewSpace()
	pool, _ := space.NewPool("t", 64, 4)
	var p Packet
	want := []byte{}
	for i := 0; i < 3; i++ {
		ptr, buf, err := pool.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		for j := range buf[:10] {
			buf[j] = byte(i*16 + j)
		}
		p.Append(Chunk{Ptr: ptr.Slice(0, 10), Data: buf[:10]})
		want = append(want, buf[:10]...)
	}
	if p.Len() != 30 {
		t.Fatalf("len = %d", p.Len())
	}
	if !bytes.Equal(p.Bytes(), want) {
		t.Fatal("linearized bytes wrong")
	}
	// Resolve from pointers round-trips.
	got, err := Resolve(space, p.Ptrs())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("resolved bytes wrong")
	}
	// Prepend puts a chunk in front.
	hdr := Chunk{Data: []byte{0xaa, 0xbb}}
	p.Prepend(hdr)
	if p.Bytes()[0] != 0xaa || p.Len() != 32 {
		t.Fatal("prepend wrong")
	}
	// CopyTo truncates at dst.
	var small [7]byte
	if n := p.CopyTo(small[:]); n != 7 {
		t.Fatalf("CopyTo = %d", n)
	}
}

func TestResolveStaleChain(t *testing.T) {
	space := shm.NewSpace()
	pool, _ := space.NewPool("t", 64, 1)
	ptr, _, _ := pool.Alloc()
	pool.Reset()
	if _, err := Resolve(space, []shm.RichPtr{ptr}); !errors.Is(err, shm.ErrStale) {
		t.Fatalf("stale resolve: %v", err)
	}
}

func BenchmarkChecksum1500(b *testing.B) {
	buf := make([]byte, 1500)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		Checksum(buf)
	}
}

func BenchmarkTCPMarshalParse(b *testing.B) {
	h := TCPHeader{SrcPort: 1, DstPort: 2, Seq: 3, Ack: 4, Flags: TCPAck, Window: 5, MSS: 1460}
	buf := make([]byte, h.MarshalLen())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Marshal(buf)
		if _, err := ParseTCP(buf); err != nil {
			b.Fatal(err)
		}
	}
}
